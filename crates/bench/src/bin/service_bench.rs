//! Multi-process job-service benchmark and smoke check.
//!
//! Launches `R` ranks as real OS processes (re-executing this binary)
//! connected by the TCP mesh transport, brings up one [`svc::RankDaemon`]
//! per rank, and drives sustained multi-tenant load through the rank-0
//! gateway: two tenants (admission weights 2:1) submit their whole job
//! mix open-loop, the admission controller dispatches weighted-fair, and
//! every rank's executor runs the stream in collective ordinal order.
//! The job mix repeats one primary tile geometry and ends each tenant on
//! a shared secondary geometry, so the per-rank plan cache is exercised
//! exactly as the service intends: two cold builds, every other job a
//! warm hit that skips inspection, array materialization, and graph
//! construction. Aggregates land in `BENCH_service.json`: throughput,
//! p50/p99 job latency, queue wait, plan-cache hit rate, the measured
//! build-time effect of a plan hit, and per-tenant fairness shares.
//!
//! ```text
//! service_bench [--ranks R] [--scale S] [--jobs N] [--threads T] [--port P]
//! service_bench --smoke     # 4 ranks, 2 tenants, 4 tiny jobs, CI gates
//! ```
//!
//! `--smoke` is the CI gate: every job's energy must match the
//! single-process reference to 1e-12, the healthy mesh must show zero
//! recovery activity (no retries, no timeouts, no dups), the cache runs
//! in `verify_reads` paranoia mode with zero stale reads tolerated, and
//! the plan cache must demonstrably hit (one cold build, three warm
//! submissions).

use bench_harness::{arg_value, has_flag};
use comm::SocketTransport;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::time::Duration;
use svc::{Client, JobSpec, RankDaemon, SvcConfig, Variant};
use tce::SpaceConfig;

/// Generous: a medium-scale job stream at 4 ranks runs minutes, and a
/// stuck service should fail by panic, not by silent truncation.
const WAIT: Duration = Duration::from_secs(600);

fn scale_of(name: &str) -> SpaceConfig {
    match name {
        "tiny" => tce::scale::tiny(),
        "small" => tce::scale::small(),
        "medium" => tce::scale::medium(),
        "paper" => tce::scale::paper(),
        other => panic!("unknown scale `{other}`"),
    }
}

fn reference(cfg: &SpaceConfig) -> f64 {
    let space = tce::TileSpace::build(cfg);
    let ws = tce::build_workspace(&space, 1);
    ccsd::verify::reference_energy(&ws)
}

/// The two-tenant job mix. Tenant 1 (weight 2) and tenant 2 (weight 1)
/// split `jobs` by weight; every job runs the primary geometry except
/// each tenant's last, which runs the shared secondary geometry — so
/// exactly two submissions are plan-cache misses and the rest are hits,
/// and the second secondary submission hits a plan the *other* tenant
/// built. Variants alternate v5/v3 per tenant to keep the graph cache
/// honest (same plan, distinct wirings).
fn job_mix(
    jobs: usize,
    primary: &SpaceConfig,
    secondary: &SpaceConfig,
    threads: usize,
) -> Vec<Vec<JobSpec>> {
    let n1 = (jobs * 2).div_ceil(3).max(1);
    let n2 = (jobs - n1).max(1);
    [(1u32, n1), (2u32, n2)]
        .into_iter()
        .map(|(tenant, n)| {
            (0..n)
                .map(|i| JobSpec {
                    tenant,
                    space: if i + 1 == n {
                        secondary.clone()
                    } else {
                        primary.clone()
                    },
                    kernels: vec![tce::Kernel::T2_7],
                    variant: if i % 2 == 0 { Variant::V5 } else { Variant::V3 },
                    threads,
                    prefetch: true,
                })
                .collect()
        })
        .collect()
}

/// One rank's aggregate counters, written as a flat fragment by member
/// ranks and folded into the gates and the JSON by rank 0.
#[derive(Default)]
struct RankOut {
    plan_hits: u64,
    plan_misses: u64,
    graph_builds: u64,
    jobs_run: u64,
    retries: u64,
    timeouts: u64,
    dups: u64,
    cache_hits: u64,
    cache_misses: u64,
    cache_retained: u64,
    stale_reads: u64,
    ga_remote_bytes: u64,
}

fn collect(daemon: &RankDaemon) -> RankOut {
    let (plan_hits, plan_misses, graph_builds) = daemon.plan_stats();
    let ga = daemon.ga_stats();
    let s = daemon.endpoint().stats();
    RankOut {
        plan_hits,
        plan_misses,
        graph_builds,
        jobs_run: daemon.records().len() as u64,
        retries: s.retries,
        timeouts: s.timeouts,
        dups: s.dup_requests + s.dup_replies,
        cache_hits: ga.cache_hits() + ga.cache_joins(),
        cache_misses: ga.cache_misses(),
        cache_retained: ga.cache_retained(),
        stale_reads: ga.stale_reads(),
        ga_remote_bytes: ga.remote_bytes(),
    }
}

fn write_fragment(path: &Path, o: &RankOut) {
    let s = format!(
        "plan_hits {}\nplan_misses {}\ngraph_builds {}\njobs_run {}\nretries {}\ntimeouts {}\ndups {}\ncache_hits {}\ncache_misses {}\ncache_retained {}\nstale_reads {}\nga_remote_bytes {}\n",
        o.plan_hits,
        o.plan_misses,
        o.graph_builds,
        o.jobs_run,
        o.retries,
        o.timeouts,
        o.dups,
        o.cache_hits,
        o.cache_misses,
        o.cache_retained,
        o.stale_reads,
        o.ga_remote_bytes,
    );
    std::fs::write(path, s).expect("write fragment");
}

fn parse_fragment(text: &str) -> RankOut {
    let mut o = RankOut::default();
    for line in text.lines() {
        let (key, val) = line.split_once(' ').expect("fragment line");
        let v: u64 = val.parse().expect("fragment value");
        match key {
            "plan_hits" => o.plan_hits = v,
            "plan_misses" => o.plan_misses = v,
            "graph_builds" => o.graph_builds = v,
            "jobs_run" => o.jobs_run = v,
            "retries" => o.retries = v,
            "timeouts" => o.timeouts = v,
            "dups" => o.dups = v,
            "cache_hits" => o.cache_hits = v,
            "cache_misses" => o.cache_misses = v,
            "cache_retained" => o.cache_retained = v,
            "stale_reads" => o.stale_reads = v,
            "ga_remote_bytes" => o.ga_remote_bytes = v,
            other => panic!("unknown fragment key `{other}`"),
        }
    }
    o
}

fn svc_config(smoke: bool) -> SvcConfig {
    SvcConfig {
        // Smoke runs the cache in paranoia mode: every hit re-fetched
        // from the owners and compared; a warm plan serving stale data
        // is exactly the failure this gate exists for. The benchmark
        // keeps verification off — that is the configuration measured.
        cache: global_arrays::TileCacheConfig {
            verify_reads: smoke,
            ..global_arrays::TileCacheConfig::default()
        },
        // The zero-recovery gate reads retries as evidence of frame
        // loss, so the timers must not fire for any other reason. At
        // bench scale, long dgemm phases on an oversubscribed box delay
        // replies and skew barrier arrivals by whole seconds; stretch
        // the timers far past any healthy-mesh latency (the sockets are
        // local and reliable — a genuinely lost frame is a bug this
        // gate should catch, not mask). Smoke jobs finish in
        // milliseconds and keep the tight defaults.
        comm: comm::CommConfig {
            retry_timeout: if smoke {
                comm::CommConfig::default().retry_timeout
            } else {
                Duration::from_secs(60)
            },
            retry_backoff_max: if smoke {
                comm::CommConfig::default().retry_backoff_max
            } else {
                Duration::from_secs(120)
            },
            ..comm::CommConfig::default()
        },
        max_open: 2,
        weights: vec![(1, 2), (2, 1)],
        ..SvcConfig::default()
    }
}

/// One tenant's driver thread: submit the whole mix open-loop (the
/// admission controller owns pacing), then wait each job out. Returns
/// `(job_id, energy, expected reference)` per job.
fn drive_tenant(
    client: Client,
    specs: Vec<JobSpec>,
    e_primary: f64,
    e_secondary: f64,
) -> Vec<(u64, f64, f64)> {
    let n = specs.len();
    let ids: Vec<(u64, f64)> = specs
        .into_iter()
        .enumerate()
        .map(|(i, s)| {
            let e_ref = if i + 1 == n { e_secondary } else { e_primary };
            let id = client.submit(&s).expect("gateway rejected a bench job");
            (id, e_ref)
        })
        .collect();
    ids.into_iter()
        .map(|(id, e_ref)| (id, client.wait(id, WAIT), e_ref))
        .collect()
}

fn child(rank: usize, ranks: usize, port: u16, args: &[String]) {
    let dir = PathBuf::from(arg_value(args, "--dir").expect("child needs --dir"));
    let smoke = has_flag(args, "--smoke");
    let transport = SocketTransport::connect(rank, ranks, port, Duration::from_secs(60))
        .unwrap_or_else(|e| panic!("rank {rank}: mesh connect failed: {e}"));
    let daemon = RankDaemon::new(Box::new(transport), svc_config(smoke));
    daemon.run();
    write_fragment(&dir.join(format!("rank{rank}.txt")), &collect(&daemon));
    daemon.finish();
}

fn percentile_ms(sorted: &[u64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((p / 100.0) * (sorted.len() - 1) as f64).round() as usize;
    sorted[idx] as f64 / 1e6
}

fn parent(ranks: usize, port: u16, args: &[String]) -> Result<(), String> {
    let smoke = has_flag(args, "--smoke");
    let scale =
        arg_value(args, "--scale").unwrap_or_else(|| if smoke { "tiny" } else { "medium" }.into());
    let jobs: usize = arg_value(args, "--jobs")
        .map(|v| v.parse().unwrap())
        .unwrap_or(if smoke { 4 } else { 12 });
    let threads: usize = arg_value(args, "--threads")
        .map(|v| v.parse().unwrap())
        .unwrap_or(2);
    let primary = scale_of(&scale);
    let secondary = if smoke {
        primary.clone()
    } else {
        scale_of("small")
    };

    // In-process ground truth before any socket work.
    let e_primary = reference(&primary);
    let e_secondary = if smoke {
        e_primary
    } else {
        reference(&secondary)
    };
    eprintln!("# reference energy ({scale}): {e_primary:.15}");

    let dir = std::env::temp_dir().join(format!("service_bench_{}", std::process::id()));
    std::fs::create_dir_all(&dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    let exe = std::env::current_exe().map_err(|e| e.to_string())?;
    let mut children = Vec::new();
    for r in 1..ranks {
        let mut cmd = std::process::Command::new(&exe);
        cmd.args(["--rank", &r.to_string()])
            .args(["--ranks", &ranks.to_string()])
            .args(["--port", &port.to_string()])
            .args(["--dir", &dir.display().to_string()]);
        if smoke {
            cmd.arg("--smoke");
        }
        children.push((r, cmd.spawn().map_err(|e| format!("spawn rank {r}: {e}"))?));
    }

    // Rank 0 hosts the gateway; tenant drivers run beside the executor.
    let transport = SocketTransport::connect(0, ranks, port, Duration::from_secs(60))
        .map_err(|e| format!("rank 0: mesh connect failed: {e}"))?;
    let daemon = RankDaemon::new(Box::new(transport), svc_config(smoke));
    let mix = job_mix(jobs, &primary, &secondary, threads);
    let drivers: Vec<_> = mix
        .into_iter()
        .map(|specs| {
            let client = daemon.client();
            std::thread::spawn(move || drive_tenant(client, specs, e_primary, e_secondary))
        })
        .collect();
    let halter = {
        let client = daemon.client();
        std::thread::spawn(move || {
            let results: Vec<Vec<(u64, f64, f64)>> =
                drivers.into_iter().map(|d| d.join().unwrap()).collect();
            client.halt();
            results
        })
    };
    daemon.run();
    let results = halter.join().map_err(|_| "tenant driver panicked")?;
    let out0 = collect(&daemon);
    let report = daemon.job_report();
    let records = daemon.records();
    let weights: Vec<(u32, u64)> = svc_config(smoke).weights;

    // Collective teardown before reaping: the children block in their
    // own `finish()` barrier until rank 0 enters it.
    daemon.finish();

    for (r, mut ch) in children {
        let status = ch.wait().map_err(|e| e.to_string())?;
        if !status.success() {
            return Err(format!("rank {r} exited with {status}"));
        }
    }
    let mut per_rank = vec![out0];
    for r in 1..ranks {
        let path = dir.join(format!("rank{r}.txt"));
        let text =
            std::fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))?;
        per_rank.push(parse_fragment(&text));
    }
    let _ = std::fs::remove_dir_all(&dir);

    // ---- gates ----------------------------------------------------
    let mut worst: f64 = 0.0;
    for (id, e, e_ref) in results.iter().flatten() {
        let d = tensor_kernels::rel_diff(*e, *e_ref);
        worst = worst.max(d);
        if d >= 1e-12 {
            return Err(format!(
                "job {id}: energy {e} vs reference {e_ref} ({d:.2e})"
            ));
        }
    }
    let sum = |f: &dyn Fn(&RankOut) -> u64| per_rank.iter().map(f).sum::<u64>();
    let recovery = sum(&|o| o.retries + o.timeouts + o.dups);
    if recovery != 0 {
        return Err(format!(
            "healthy mesh showed recovery activity ({} retries, {} timeouts, {} dups) — \
             retry timers must never fire without faults",
            sum(&|o| o.retries),
            sum(&|o| o.timeouts),
            sum(&|o| o.dups),
        ));
    }
    let stale = sum(&|o| o.stale_reads);
    if stale != 0 {
        return Err(format!("{stale} cached reads observed stale data"));
    }
    for (r, o) in per_rank.iter().enumerate() {
        if o.jobs_run != jobs as u64 {
            return Err(format!("rank {r} executed {} of {jobs} jobs", o.jobs_run));
        }
        // Two geometries in the mix (one in smoke): the plan cache must
        // build each exactly once per rank and hit everywhere else.
        let want_misses = if smoke { 1 } else { 2 };
        if o.plan_misses != want_misses || o.plan_hits != jobs as u64 - want_misses {
            return Err(format!(
                "rank {r}: plan cache {}h/{}m, expected {}h/{want_misses}m — \
                 repeat submissions are not reusing plans",
                o.plan_hits,
                o.plan_misses,
                jobs as u64 - want_misses,
            ));
        }
    }

    // ---- aggregates ------------------------------------------------
    let done = |m: &svc::JobMeta| m.state == svc::JobState::Done;
    if !report.iter().all(done) || report.len() != jobs {
        return Err(format!("gateway closed {} of {jobs} jobs", report.len()));
    }
    let t_first = report.iter().map(|m| m.submitted_ns).min().unwrap_or(0);
    let t_last = report.iter().map(|m| m.done_ns).max().unwrap_or(0);
    let span_s = (t_last.saturating_sub(t_first)) as f64 / 1e9;
    let jobs_per_sec = if span_s > 0.0 {
        jobs as f64 / span_s
    } else {
        0.0
    };
    let mut lat: Vec<u64> = report.iter().map(|m| m.done_ns - m.submitted_ns).collect();
    lat.sort_unstable();
    let mut qwait: Vec<u64> = report
        .iter()
        .map(|m| m.dispatched_ns - m.submitted_ns)
        .collect();
    qwait.sort_unstable();

    // The plan-cache effect, measured on rank 0's own records: a hit
    // job's build phase (lookup + graph reuse) against a miss job's
    // (inspection, array materialization, fills, graph build).
    let build_avg = |hit: bool| {
        let v: Vec<u64> = records
            .iter()
            .filter(|j| j.plan_hit == hit)
            .map(|j| j.build_ns)
            .collect();
        if v.is_empty() {
            0.0
        } else {
            v.iter().sum::<u64>() as f64 / v.len() as f64
        }
    };
    let (miss_build, hit_build) = (build_avg(false), build_avg(true));
    if hit_build * 5.0 >= miss_build {
        return Err(format!(
            "plan hits are not cheap: hit build {:.3} ms vs miss build {:.3} ms",
            hit_build / 1e6,
            miss_build / 1e6
        ));
    }

    // Per-tenant shares: dispatch counts against the weighted ideal.
    let total_w: u64 = weights.iter().map(|&(_, w)| w).sum();
    let mut tenant_rows = Vec::new();
    for &(tenant, weight) in &weights {
        let mut tl: Vec<u64> = report
            .iter()
            .filter(|m| m.tenant == tenant)
            .map(|m| m.done_ns - m.submitted_ns)
            .collect();
        tl.sort_unstable();
        let n = tl.len();
        let share = n as f64 / jobs as f64;
        let ideal = weight as f64 / total_w as f64;
        println!(
            "tenant {tenant} (weight {weight}): {n} jobs, share {share:.3} (weighted ideal {ideal:.3}), p50 {:.1} ms, p99 {:.1} ms",
            percentile_ms(&tl, 50.0),
            percentile_ms(&tl, 99.0),
        );
        tenant_rows.push(format!(
            "    {{\"tenant\": {tenant}, \"weight\": {weight}, \"jobs\": {n}, \"share\": {share:.6}, \"weighted_ideal\": {ideal:.6}, \"latency_ms\": {{\"p50\": {:.3}, \"p99\": {:.3}}}}}",
            percentile_ms(&tl, 50.0),
            percentile_ms(&tl, 99.0),
        ));
    }

    let (hits, misses, builds) = (
        sum(&|o| o.plan_hits),
        sum(&|o| o.plan_misses),
        sum(&|o| o.graph_builds),
    );
    let hit_rate = hits as f64 / (hits + misses) as f64;
    println!(
        "{jobs} jobs over {ranks} ranks: {jobs_per_sec:.2} jobs/s  latency p50 {:.1} ms p99 {:.1} ms  queue wait p50 {:.1} ms",
        percentile_ms(&lat, 50.0),
        percentile_ms(&lat, 99.0),
        percentile_ms(&qwait, 50.0),
    );
    println!(
        "plan cache: hit rate {hit_rate:.3} ({hits} hits / {misses} misses, {builds} graph builds)  hit build {:.2} ms vs miss build {:.2} ms ({:.0}x)",
        hit_build / 1e6,
        miss_build / 1e6,
        miss_build / hit_build.max(1.0),
    );
    println!(
        "warm cache: {} tile hits, {} retained across syncs, {} stale (verify {})",
        sum(&|o| o.cache_hits),
        sum(&|o| o.cache_retained),
        stale,
        smoke,
    );

    if smoke {
        println!(
            "SERVICE SMOKE OK: {jobs} jobs, 2 tenants, worst rel diff {worst:.2e}, \
             0 retries, 0 stale reads, {hits} plan hits"
        );
        return Ok(());
    }

    let json = format!(
        "{{\n  \"ranks\": {ranks},\n  \"scale\": \"{scale}\",\n  \"secondary_scale\": \"small\",\n  \"jobs\": {jobs},\n  \"threads_per_job\": {threads},\n  \"max_open\": 2,\n  \"reference_energy\": {e_primary:.17e},\n  \"worst_energy_rel_diff\": {worst:.3e},\n  \"throughput_jobs_per_sec\": {jobs_per_sec:.4},\n  \"latency_ms\": {{\"p50\": {:.3}, \"p99\": {:.3}}},\n  \"queue_wait_ms\": {{\"p50\": {:.3}, \"p99\": {:.3}}},\n  \"plan_cache\": {{\"hits\": {hits}, \"misses\": {misses}, \"graph_builds\": {builds}, \"hit_rate\": {hit_rate:.6}}},\n  \"plan_effect\": {{\"miss_build_ms\": {:.3}, \"hit_build_ms\": {:.3}, \"build_speedup\": {:.1}}},\n  \"tile_cache\": {{\"hits\": {}, \"misses\": {}, \"retained\": {}}},\n  \"ga_remote_bytes\": {},\n  \"recovery\": {{\"retries\": 0, \"timeouts\": 0, \"dups\": 0}},\n  \"tenants\": [\n{}\n  ]\n}}\n",
        percentile_ms(&lat, 50.0),
        percentile_ms(&lat, 99.0),
        percentile_ms(&qwait, 50.0),
        percentile_ms(&qwait, 99.0),
        miss_build / 1e6,
        hit_build / 1e6,
        miss_build / hit_build.max(1.0),
        sum(&|o| o.cache_hits),
        sum(&|o| o.cache_misses),
        sum(&|o| o.cache_retained),
        sum(&|o| o.ga_remote_bytes),
        tenant_rows.join(",\n"),
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_service.json");
    let mut f = std::fs::File::create(path).map_err(|e| e.to_string())?;
    f.write_all(json.as_bytes()).map_err(|e| e.to_string())?;
    println!("wrote {path}");
    Ok(())
}

fn main() -> std::process::ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let ranks: usize = arg_value(&args, "--ranks")
        .map(|v| v.parse().unwrap())
        .unwrap_or(4);
    // Distinct port windows across concurrent invocations.
    let port: u16 = arg_value(&args, "--port")
        .map(|v| v.parse().unwrap())
        .unwrap_or_else(|| 30000 + (std::process::id() % 700) as u16 * 8);
    match arg_value(&args, "--rank") {
        Some(r) => {
            child(r.parse().unwrap(), ranks, port, &args);
            std::process::ExitCode::SUCCESS
        }
        None => match parent(ranks, port, &args) {
            Ok(()) => std::process::ExitCode::SUCCESS,
            Err(msg) => {
                eprintln!("error: {msg}");
                std::process::ExitCode::FAILURE
            }
        },
    }
}
