//! Multi-process communication benchmark and smoke check.
//!
//! Launches `R` ranks as real OS processes (re-executing this binary)
//! connected by the TCP mesh transport, runs CCSD variants through the
//! distributed Global Arrays backend, and aggregates per-rank fragments
//! into `BENCH_comm.json`: wire bytes, eager/rendezvous payload counts,
//! get-latency percentiles, and the communication/computation overlap
//! fraction. The two default runs are the paper's headline ablation —
//! v5 with the priority-driven prefetch pipeline against v2 (priorities
//! off): without priorities the in-flight caps drain reader gets in
//! class order, so GEMMs starve while transfers run and the overlap
//! fraction drops.
//!
//! ```text
//! comm_bench [--ranks R] [--scale S] [--threads T] [--reps N] [--port P]
//! comm_bench --smoke        # v1..v5 + fused v5 energies vs the reference
//! comm_bench --chaos [--seed S]   # fault-injection matrix over sockets
//! ```
//!
//! `--smoke` is the CI gate: every variant on the 4-rank socket mesh must
//! reproduce the single-process reference energy to 1e-12. `--chaos`
//! replays every named fault schedule (plus a clean control) through
//! [`comm::FaultTransport`] over the real socket mesh with fixed seeds:
//! each schedule must terminate and reproduce the reference energy, the
//! clean control must show zero recovery activity, and the failure
//! message carries the seed so a red run replays exactly. `--chaos`
//! then runs the **kill matrix**: every scripted death schedule kills
//! the highest rank mid-run and gates that all four processes still
//! terminate (via detector poison-release), that the survivors confirm
//! the death, and that a detector armed on a healthy mesh shows zero
//! false positives and an unchanged energy.

use bench_harness::{arg_value, has_flag};
use ccsd::{verify, DistRank, StealConfig, VariantCfg};
use comm::fault::{FaultPlan, FaultTransport};
use comm::SocketTransport;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// One variant execution's rank-local measurements.
#[derive(Default)]
struct RunOut {
    name: String,
    energy: Option<f64>,
    /// Workers per rank for this row (the cores-per-node axis).
    threads: u64,
    /// Rank-local wall time of the run(s), collective overhead included.
    wall_ns: u64,
    comm_ns: u64,
    overlapped_ns: u64,
    eager: u64,
    rndv: u64,
    bytes_tx: u64,
    bytes_rx: u64,
    gets: u64,
    puts: u64,
    accs: u64,
    ga_local: u64,
    ga_remote: u64,
    /// Recovery activity (all zero on a healthy network — gated).
    timeouts: u64,
    retries: u64,
    dup_requests: u64,
    dup_replies: u64,
    /// Faults injected by the local wrapper (chaos mode only).
    injected: u64,
    /// Failure-detector activity (kill matrix only; the clean control
    /// runs with the detector armed and is gated to all-zero).
    suspects: u64,
    confirmed_deaths: u64,
    rejoins: u64,
    /// Tile-cache effectiveness (hits/joins never touch the wire).
    cache_hits: u64,
    cache_joins: u64,
    cache_misses: u64,
    cache_invals: u64,
    cache_hit_bytes: u64,
    /// Verified-stale cached reads (chaos/smoke only; gated to zero).
    stale_reads: u64,
    /// Request coalescing and multi-get batching on the wire side.
    coalesced_gets: u64,
    get_req_bytes: u64,
    get_coal_bytes: u64,
    get_wire_bytes: u64,
    multi_gets: u64,
    multi_parts: u64,
    /// Cross-rank steal activity: requests posted, chains claimed from
    /// the local ledger, donated to thieves, received from victims, and
    /// the migrated working-set bytes.
    steal_reqs: u64,
    steal_local_claimed: u64,
    steal_donated: u64,
    steal_donated_bytes: u64,
    steal_stolen: u64,
    steal_stolen_bytes: u64,
    /// Engine-side load balancing: deque-to-deque steals within the rank
    /// and root tasks seeded through the external ledger source.
    engine_local_steals: u64,
    engine_external_tasks: u64,
    lat_ns: Vec<u64>,
}

/// The wire-accounting invariants every rank must reconcile before its
/// fragment is trusted: the GA layer's idea of remote read traffic must
/// equal the endpoint's requested get bytes, and requested bytes must
/// split exactly into coalesced (shared) and wire (transferred) bytes.
/// A drift here means a counter lies — fail the whole benchmark loudly.
fn assert_reconciled(rank: usize, ga: &global_arrays::GaStats, s: &comm::CommStatsSnap) {
    assert_eq!(
        ga.remote_get_bytes(),
        s.get_req_bytes,
        "rank {rank}: GA remote get bytes diverged from endpoint get_req_bytes — \
         a read path is bypassing the accounting"
    );
    assert_eq!(
        s.get_req_bytes - s.get_coal_bytes,
        s.get_wire_bytes,
        "rank {rank}: get_req_bytes - get_coal_bytes != get_wire_bytes — \
         coalescing accounting leaked (req {}, coal {}, wire {})",
        s.get_req_bytes,
        s.get_coal_bytes,
        s.get_wire_bytes
    );
}

fn scale_of(name: &str) -> tce::SpaceConfig {
    match name {
        "tiny" => tce::scale::tiny(),
        "small" => tce::scale::small(),
        "medium" => tce::scale::medium(),
        "paper" => tce::scale::paper(),
        other => panic!("unknown scale `{other}`"),
    }
}

/// The benchmark's run list: the prefetch pipeline with priorities (v5)
/// against the no-priority ablation (v2); smoke mode checks all five
/// variants plus the fused-epilogue v5 instead.
fn run_list(smoke: bool) -> Vec<(String, VariantCfg, bool)> {
    if smoke {
        VariantCfg::all()
            .into_iter()
            .map(|cfg| (cfg.name.to_string(), cfg, true))
            // The fused chain epilogue must survive the socket mesh too.
            .chain([("v5f".to_string(), VariantCfg::v5().fused(), true)])
            .collect()
    } else {
        vec![
            ("v5_prefetch".into(), VariantCfg::v5(), true),
            ("v2_noprio".into(), VariantCfg::v2(), true),
        ]
    }
}

/// The rows one rank executes: smoke checks every variant once at the
/// given worker count; bench mode sweeps the cores-per-node axis
/// (v5-vs-v2 at each step, the Fig. 9 regime) and appends a steal
/// demonstration row — remote-first stealing at the widest setting, so
/// chain migration fires deterministically even on a balanced mesh.
fn job_list(
    smoke: bool,
    threads_list: &[usize],
) -> Vec<(String, VariantCfg, bool, usize, StealConfig)> {
    if smoke {
        let t = threads_list[0];
        return run_list(true)
            .into_iter()
            .map(|(name, cfg, prefetch)| (name, cfg, prefetch, t, StealConfig::default()))
            .collect();
    }
    let mut jobs = Vec::new();
    for &t in threads_list {
        for (name, cfg, prefetch) in run_list(false) {
            jobs.push((
                format!("{name}_t{t}"),
                cfg,
                prefetch,
                t,
                StealConfig::default(),
            ));
        }
    }
    let t = threads_list.iter().copied().max().unwrap_or(1);
    jobs.push((
        format!("v5_steal_t{t}"),
        VariantCfg::v5(),
        true,
        t,
        StealConfig {
            window: usize::MAX,
            batch: 1,
            limit: 2,
            remote_first: true,
            ..StealConfig::default()
        },
    ));
    jobs
}

/// Execute this rank's share of every run over the socket mesh. Each
/// run is repeated `reps` times with counters summed: on a small host
/// a single execution's overlap fraction is scheduling noise.
fn run_rank(
    rank: usize,
    ranks: usize,
    port: u16,
    scale: &str,
    threads_list: &[usize],
    reps: usize,
    smoke: bool,
) -> Vec<RunOut> {
    let space = tce::TileSpace::build(&scale_of(scale));
    let transport = SocketTransport::connect(rank, ranks, port, Duration::from_secs(60))
        .unwrap_or_else(|e| panic!("rank {rank}: mesh connect failed: {e}"));
    // The smoke check keeps the stock configuration; the benchmark
    // splits the eager threshold through the middle of medium-scale
    // block sizes so both payload protocols are exercised and measured.
    let cfg = comm::CommConfig {
        eager_threshold: if smoke { 4096 } else { 32 * 1024 },
        ..comm::CommConfig::default()
    };
    // The smoke gate runs the cache in paranoia mode: every hit is
    // re-fetched fresh from the owners and compared, and any mismatch
    // counts a stale read that fails CI. The benchmark proper keeps
    // verification off — that is the configuration being measured.
    let cache_cfg = global_arrays::TileCacheConfig {
        verify_reads: smoke,
        ..global_arrays::TileCacheConfig::default()
    };
    let dr = DistRank::with_configs(
        Box::new(transport),
        &space,
        &[tce::Kernel::T2_7],
        cfg,
        cache_cfg,
    );
    let mut outs = Vec::new();
    for (name, cfg, prefetch, threads, scfg) in job_list(smoke, threads_list) {
        let mut acc: Option<RunOut> = None;
        for _ in 0..reps.max(1) {
            let ep = dr.endpoint();
            let ga_stats = dr.workspace().ga.stats();
            // Drain cumulative state so this run measures only itself.
            let _ = ep.take_trace();
            let _ = ep.take_latencies();
            let s0 = ep.stats();
            let (l0, r0) = (ga_stats.local_bytes(), ga_stats.remote_bytes());
            let c0 = (
                ga_stats.cache_hits(),
                ga_stats.cache_joins(),
                ga_stats.cache_misses(),
                ga_stats.cache_invalidations(),
                ga_stats.cache_hit_bytes(),
            );

            let t0 = Instant::now();
            let run = dr.run_variant_steal(cfg, threads, prefetch, scfg);
            let wall = t0.elapsed().as_nanos() as u64;

            let s1 = ep.stats();
            let mut trace = run.report.trace;
            trace.absorb(&ep.take_trace());
            let node = xtrace::analyze::comm_overlap(&trace)
                .remove(&(rank as u32))
                .unwrap_or_default();
            let out = acc.get_or_insert_with(|| RunOut {
                name: name.clone(),
                threads: threads as u64,
                ..RunOut::default()
            });
            out.energy = run.energy;
            out.wall_ns += wall;
            out.steal_reqs += s1.steal_reqs - s0.steal_reqs;
            out.steal_local_claimed += run.steal.local_claimed;
            out.steal_donated += run.steal.donated_chains;
            out.steal_donated_bytes += run.steal.donated_bytes;
            out.steal_stolen += run.steal.stolen_chains;
            out.steal_stolen_bytes += run.steal.stolen_bytes;
            out.engine_local_steals += run.report.steal.local_steals;
            out.engine_external_tasks += run.report.steal.external_tasks;
            out.comm_ns += node.comm;
            out.overlapped_ns += node.overlapped;
            out.eager += s1.eager_payloads - s0.eager_payloads;
            out.rndv += s1.rndv_payloads - s0.rndv_payloads;
            out.bytes_tx += s1.bytes_tx - s0.bytes_tx;
            out.bytes_rx += s1.bytes_rx - s0.bytes_rx;
            out.gets += s1.gets - s0.gets;
            out.puts += s1.puts - s0.puts;
            out.accs += s1.accs - s0.accs;
            out.ga_local += ga_stats.local_bytes() - l0;
            out.ga_remote += ga_stats.remote_bytes() - r0;
            out.timeouts += s1.timeouts - s0.timeouts;
            out.retries += s1.retries - s0.retries;
            out.dup_requests += s1.dup_requests - s0.dup_requests;
            out.dup_replies += s1.dup_replies - s0.dup_replies;
            out.cache_hits += ga_stats.cache_hits() - c0.0;
            out.cache_joins += ga_stats.cache_joins() - c0.1;
            out.cache_misses += ga_stats.cache_misses() - c0.2;
            out.cache_invals += ga_stats.cache_invalidations() - c0.3;
            out.cache_hit_bytes += ga_stats.cache_hit_bytes() - c0.4;
            out.stale_reads = ga_stats.stale_reads();
            out.coalesced_gets += s1.coalesced_gets - s0.coalesced_gets;
            out.get_req_bytes += s1.get_req_bytes - s0.get_req_bytes;
            out.get_coal_bytes += s1.get_coal_bytes - s0.get_coal_bytes;
            out.get_wire_bytes += s1.get_wire_bytes - s0.get_wire_bytes;
            out.multi_gets += s1.multi_gets - s0.multi_gets;
            out.multi_parts += s1.multi_parts - s0.multi_parts;
            out.lat_ns.extend(ep.take_latencies());
        }
        outs.push(acc.expect("reps >= 1"));
    }
    assert_reconciled(rank, dr.workspace().ga.stats(), &dr.endpoint().stats());
    dr.finish();
    outs
}

/// One rank of a chaos run: v5 at tiny scale over a fault-wrapped socket
/// mesh with chaos-speed retry timers. The injector is disarmed after
/// the results exist so the final collective teardown runs clean.
fn run_rank_chaos(rank: usize, ranks: usize, port: u16, schedule: &str, seed: u64) -> RunOut {
    let space = tce::TileSpace::build(&tce::scale::tiny());
    let sock = SocketTransport::connect(rank, ranks, port, Duration::from_secs(60))
        .unwrap_or_else(|e| panic!("rank {rank}: mesh connect failed: {e}"));
    let plan = FaultPlan::named(schedule, seed.wrapping_add(rank as u64))
        .unwrap_or_else(|| panic!("unknown chaos schedule `{schedule}`"));
    let ft = FaultTransport::new(Box::new(sock), plan);
    let armed = ft.armed_handle();
    let injected = ft.counters();
    // Fault schedules run with fast timers so injected losses recover in
    // milliseconds. The clean control keeps the production timers — the
    // gate there is exactly that they never fire on a healthy mesh
    // (startup skew between real processes can exceed a 20ms timer).
    let cfg = if schedule == "clean" {
        comm::CommConfig {
            eager_threshold: 1024,
            ..comm::CommConfig::default()
        }
    } else {
        comm::CommConfig {
            eager_threshold: 1024,
            retry_timeout: Duration::from_millis(20),
            retry_backoff_max: Duration::from_millis(80),
            ..comm::CommConfig::default()
        }
    };
    // Chaos always runs the cache in paranoia mode: every hit re-fetched
    // and compared, so an injected fault that left a stale block cached
    // is counted — and gated to zero by the parent.
    let cache_cfg = global_arrays::TileCacheConfig {
        verify_reads: true,
        ..global_arrays::TileCacheConfig::default()
    };
    let dr = DistRank::with_configs(Box::new(ft), &space, &[tce::Kernel::T2_7], cfg, cache_cfg);
    // Four workers per rank: the fused engine's multithreaded regime is
    // part of what chaos must cover (stolen grants riding a faulty wire).
    let run = dr.run_variant(VariantCfg::v5(), 4, true);
    // Fill-then-hit across the faulty mesh so the verified stale gate is
    // actually exercised (tiny-scale runs rarely re-read a block between
    // syncs on their own).
    let ws = dr.workspace();
    let t2_len = ws.t2_layout.len();
    assert_eq!(
        ws.ga.get(ws.t2, 0, t2_len),
        ws.ga.get(ws.t2, 0, t2_len),
        "rank {rank}: repeated t2 read diverged under schedule `{schedule}`"
    );
    let s = dr.endpoint().stats();
    let gs = dr.workspace().ga.stats();
    let (cache_hits, stale_reads) = (gs.cache_hits(), gs.stale_reads());
    assert_reconciled(rank, gs, &s);
    armed.store(false, std::sync::atomic::Ordering::SeqCst);
    dr.finish();
    RunOut {
        name: schedule.to_string(),
        energy: run.energy,
        threads: 4,
        timeouts: s.timeouts,
        retries: s.retries,
        dup_requests: s.dup_requests,
        dup_replies: s.dup_replies,
        injected: injected.total(),
        cache_hits,
        stale_reads,
        steal_reqs: s.steal_reqs,
        steal_local_claimed: run.steal.local_claimed,
        steal_donated: run.steal.donated_chains,
        steal_donated_bytes: run.steal.donated_bytes,
        steal_stolen: run.steal.stolen_chains,
        steal_stolen_bytes: run.steal.stolen_bytes,
        engine_local_steals: run.report.steal.local_steals,
        engine_external_tasks: run.report.steal.external_tasks,
        ..RunOut::default()
    }
}

/// One rank of a death-schedule run: the victim (highest rank) runs the
/// named kill plan, every other rank a clean plan off the same base
/// seed, and the failure detector is armed on all of them. No energy
/// gate here — a dead gang member poisons the collective result by
/// design (the energy-through-death headline lives in the service
/// layer's fence-and-requeue path, `service_bench --recovery`); the
/// parent gates termination, survivor-side detection, and the
/// detector-armed clean control instead. The injector stays armed
/// through teardown: the kill *is* the scenario, and the detector's
/// poison-release is what must let every rank out of the final barrier.
fn run_rank_kill(rank: usize, ranks: usize, port: u16, schedule: &str, seed: u64) -> RunOut {
    let space = tce::TileSpace::build(&tce::scale::tiny());
    let sock = SocketTransport::connect(rank, ranks, port, Duration::from_secs(60))
        .unwrap_or_else(|e| panic!("rank {rank}: mesh connect failed: {e}"));
    let victim = ranks - 1;
    let plan = if rank == victim && schedule != "clean" {
        FaultPlan::named(schedule, seed)
            .unwrap_or_else(|| panic!("unknown death schedule `{schedule}`"))
    } else {
        FaultPlan::clean(seed.wrapping_add(rank as u64))
    };
    let ft = FaultTransport::new(Box::new(sock), plan);
    let injected = ft.counters();
    // The clean control keeps the production retry timers (the gate is
    // that they never fire on a healthy mesh); kill runs use chaos-speed
    // timers so ops blocked on the corpse turn around in milliseconds
    // once the detector aborts them.
    let cfg = comm::CommConfig {
        eager_threshold: 1024,
        retry_timeout: if schedule == "clean" {
            comm::CommConfig::default().retry_timeout
        } else {
            Duration::from_millis(20)
        },
        retry_backoff_max: if schedule == "clean" {
            comm::CommConfig::default().retry_backoff_max
        } else {
            Duration::from_millis(80)
        },
        suspect_after: Some(Duration::from_millis(100)),
        dead_after: Duration::from_millis(500),
        ..comm::CommConfig::default()
    };
    // Cache verification stays off in kill runs: a poisoned run reads
    // zeros from the corpse by design, and re-verified hits would count
    // those as stale. The clean control re-verifies every hit.
    let cache_cfg = global_arrays::TileCacheConfig {
        verify_reads: schedule == "clean",
        ..global_arrays::TileCacheConfig::default()
    };
    let dr = DistRank::with_configs(Box::new(ft), &space, &[tce::Kernel::T2_7], cfg, cache_cfg);
    // Enough back-to-back runs that every scripted kill index (the
    // largest is 400 arrivals; a tiny run delivers a few dozen per
    // rank) lands inside live workload traffic rather than in the
    // teardown tail. Runs after the death abort fast: every collective
    // toward the corpse poison-releases as soon as the dead mask is set.
    let iters = if schedule == "clean" { 2 } else { 20 };
    let mut energy = None;
    for i in 0..iters {
        let run = dr.run_variant(VariantCfg::v5(), 2, true);
        if i == 0 {
            energy = run.energy;
        }
        // Stop issuing collectives at the first confirmed death: every
        // further run would be poisoned anyway, and — critically — a
        // scripted Restart readmits the victim with its collective
        // epochs far behind the survivors'. Once everyone is alive
        // again nothing poison-releases, so a live-but-desynced
        // barrier would block forever. Fencing the workload at the
        // first death keeps a rejoin purely observational, mirroring
        // the service layer (sticky gateway fence, re-plan on the
        // survivors).
        if dr.endpoint().dead_mask() != 0 {
            break;
        }
    }
    if schedule == "kill_restart" {
        // Linger until the restarted rank is readmitted: survivors keep
        // probing the corpse at a slow cadence, the scripted Restart
        // eventually lets those pings through, and the pong handshake
        // clears the dead mask on both sides. Observing the rejoin here
        // instead of racing it against teardown makes the rejoin gate
        // deterministic.
        let t0 = Instant::now();
        while dr.endpoint().dead_mask() != 0 && t0.elapsed() < Duration::from_secs(30) {
            std::thread::sleep(Duration::from_millis(20));
        }
    }
    let s = dr.endpoint().stats();
    let stale = dr.workspace().ga.stats().stale_reads();
    if schedule == "clean" {
        dr.finish();
    } else {
        // No clean collective teardown on a mesh that saw a death: the
        // sync inside `finish` needs matching barrier epochs on every
        // rank, and after a kill (or a mid-run readmission) those are
        // gone for good. Shut the engine down directly — terminating
        // without the victim is exactly the behavior under test.
        dr.endpoint().shutdown();
    }
    RunOut {
        name: schedule.to_string(),
        energy,
        threads: 2,
        timeouts: s.timeouts,
        retries: s.retries,
        dup_requests: s.dup_requests,
        dup_replies: s.dup_replies,
        injected: injected.total(),
        suspects: s.suspects,
        confirmed_deaths: s.confirmed_deaths,
        rejoins: s.rejoins,
        stale_reads: stale,
        ..RunOut::default()
    }
}

/// Flat line-oriented fragment format (internal to the bench; only the
/// aggregate is JSON).
fn write_fragment(path: &Path, outs: &[RunOut]) {
    let mut s = String::new();
    for o in outs {
        s.push_str(&format!("run {}\n", o.name));
        if let Some(e) = o.energy {
            s.push_str(&format!("energy {e:.17e}\n"));
        }
        for (k, v) in [
            ("threads", o.threads),
            ("wall_ns", o.wall_ns),
            ("comm_ns", o.comm_ns),
            ("overlapped_ns", o.overlapped_ns),
            ("eager", o.eager),
            ("rndv", o.rndv),
            ("bytes_tx", o.bytes_tx),
            ("bytes_rx", o.bytes_rx),
            ("gets", o.gets),
            ("puts", o.puts),
            ("accs", o.accs),
            ("ga_local", o.ga_local),
            ("ga_remote", o.ga_remote),
            ("timeouts", o.timeouts),
            ("retries", o.retries),
            ("dup_requests", o.dup_requests),
            ("dup_replies", o.dup_replies),
            ("injected", o.injected),
            ("suspects", o.suspects),
            ("confirmed_deaths", o.confirmed_deaths),
            ("rejoins", o.rejoins),
            ("cache_hits", o.cache_hits),
            ("cache_joins", o.cache_joins),
            ("cache_misses", o.cache_misses),
            ("cache_invals", o.cache_invals),
            ("cache_hit_bytes", o.cache_hit_bytes),
            ("stale_reads", o.stale_reads),
            ("coalesced_gets", o.coalesced_gets),
            ("get_req_bytes", o.get_req_bytes),
            ("get_coal_bytes", o.get_coal_bytes),
            ("get_wire_bytes", o.get_wire_bytes),
            ("multi_gets", o.multi_gets),
            ("multi_parts", o.multi_parts),
            ("steal_reqs", o.steal_reqs),
            ("steal_local_claimed", o.steal_local_claimed),
            ("steal_donated", o.steal_donated),
            ("steal_donated_bytes", o.steal_donated_bytes),
            ("steal_stolen", o.steal_stolen),
            ("steal_stolen_bytes", o.steal_stolen_bytes),
            ("engine_local_steals", o.engine_local_steals),
            ("engine_external_tasks", o.engine_external_tasks),
        ] {
            s.push_str(&format!("{k} {v}\n"));
        }
        let lats: Vec<String> = o.lat_ns.iter().map(|x| x.to_string()).collect();
        s.push_str(&format!("lat_ns {}\n", lats.join(",")));
    }
    std::fs::write(path, s).expect("write fragment");
}

fn parse_fragment(text: &str) -> Vec<RunOut> {
    let mut outs: Vec<RunOut> = Vec::new();
    for line in text.lines() {
        let (key, val) = line.split_once(' ').unwrap_or((line, ""));
        if key == "run" {
            outs.push(RunOut {
                name: val.to_string(),
                ..RunOut::default()
            });
            continue;
        }
        let o = outs.last_mut().expect("fragment starts with a run line");
        match key {
            "energy" => o.energy = Some(val.parse().unwrap()),
            "threads" => o.threads = val.parse().unwrap(),
            "wall_ns" => o.wall_ns = val.parse().unwrap(),
            "comm_ns" => o.comm_ns = val.parse().unwrap(),
            "overlapped_ns" => o.overlapped_ns = val.parse().unwrap(),
            "eager" => o.eager = val.parse().unwrap(),
            "rndv" => o.rndv = val.parse().unwrap(),
            "bytes_tx" => o.bytes_tx = val.parse().unwrap(),
            "bytes_rx" => o.bytes_rx = val.parse().unwrap(),
            "gets" => o.gets = val.parse().unwrap(),
            "puts" => o.puts = val.parse().unwrap(),
            "accs" => o.accs = val.parse().unwrap(),
            "ga_local" => o.ga_local = val.parse().unwrap(),
            "ga_remote" => o.ga_remote = val.parse().unwrap(),
            "timeouts" => o.timeouts = val.parse().unwrap(),
            "retries" => o.retries = val.parse().unwrap(),
            "dup_requests" => o.dup_requests = val.parse().unwrap(),
            "dup_replies" => o.dup_replies = val.parse().unwrap(),
            "injected" => o.injected = val.parse().unwrap(),
            "suspects" => o.suspects = val.parse().unwrap(),
            "confirmed_deaths" => o.confirmed_deaths = val.parse().unwrap(),
            "rejoins" => o.rejoins = val.parse().unwrap(),
            "cache_hits" => o.cache_hits = val.parse().unwrap(),
            "cache_joins" => o.cache_joins = val.parse().unwrap(),
            "cache_misses" => o.cache_misses = val.parse().unwrap(),
            "cache_invals" => o.cache_invals = val.parse().unwrap(),
            "cache_hit_bytes" => o.cache_hit_bytes = val.parse().unwrap(),
            "stale_reads" => o.stale_reads = val.parse().unwrap(),
            "coalesced_gets" => o.coalesced_gets = val.parse().unwrap(),
            "get_req_bytes" => o.get_req_bytes = val.parse().unwrap(),
            "get_coal_bytes" => o.get_coal_bytes = val.parse().unwrap(),
            "get_wire_bytes" => o.get_wire_bytes = val.parse().unwrap(),
            "multi_gets" => o.multi_gets = val.parse().unwrap(),
            "multi_parts" => o.multi_parts = val.parse().unwrap(),
            "steal_reqs" => o.steal_reqs = val.parse().unwrap(),
            "steal_local_claimed" => o.steal_local_claimed = val.parse().unwrap(),
            "steal_donated" => o.steal_donated = val.parse().unwrap(),
            "steal_donated_bytes" => o.steal_donated_bytes = val.parse().unwrap(),
            "steal_stolen" => o.steal_stolen = val.parse().unwrap(),
            "steal_stolen_bytes" => o.steal_stolen_bytes = val.parse().unwrap(),
            "engine_local_steals" => o.engine_local_steals = val.parse().unwrap(),
            "engine_external_tasks" => o.engine_external_tasks = val.parse().unwrap(),
            "lat_ns" => {
                o.lat_ns = val
                    .split(',')
                    .filter(|t| !t.is_empty())
                    .map(|t| t.parse().unwrap())
                    .collect()
            }
            other => panic!("unknown fragment key `{other}`"),
        }
    }
    outs
}

fn percentile_us(sorted: &[u64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((p / 100.0) * (sorted.len() - 1) as f64).round() as usize;
    sorted[idx] as f64 / 1e3
}

fn child(rank: usize, ranks: usize, port: u16, args: &[String]) {
    let dir = PathBuf::from(arg_value(args, "--dir").expect("child needs --dir"));
    if let Some(schedule) = arg_value(args, "--chaos-schedule") {
        let seed: u64 = arg_value(args, "--chaos-seed")
            .expect("chaos child needs --chaos-seed")
            .parse()
            .unwrap();
        let out = run_rank_chaos(rank, ranks, port, &schedule, seed);
        write_fragment(&dir.join(format!("rank{rank}.txt")), &[out]);
        return;
    }
    if let Some(schedule) = arg_value(args, "--kill-schedule") {
        let seed: u64 = arg_value(args, "--chaos-seed")
            .expect("kill child needs --chaos-seed")
            .parse()
            .unwrap();
        let out = run_rank_kill(rank, ranks, port, &schedule, seed);
        write_fragment(&dir.join(format!("rank{rank}.txt")), &[out]);
        return;
    }
    let scale = arg_value(args, "--scale").unwrap_or_else(|| "tiny".into());
    let threads = parse_threads(arg_value(args, "--threads"), &[1]);
    let reps: usize = arg_value(args, "--reps")
        .map(|v| v.parse().unwrap())
        .unwrap_or(1);
    let outs = run_rank(
        rank,
        ranks,
        port,
        &scale,
        &threads,
        reps,
        has_flag(args, "--smoke"),
    );
    write_fragment(&dir.join(format!("rank{rank}.txt")), &outs);
}

/// `--threads` accepts one value (smoke: workers per rank) or a comma
/// list (bench: the cores-per-node sweep axis).
fn parse_threads(arg: Option<String>, default: &[usize]) -> Vec<usize> {
    match arg {
        None => default.to_vec(),
        Some(v) => v
            .split(',')
            .map(|t| t.trim().parse().expect("--threads takes integers"))
            .collect(),
    }
}

fn parent(ranks: usize, port: u16, args: &[String]) -> Result<(), String> {
    let smoke = has_flag(args, "--smoke");
    // Bench mode wants real per-chain GEMM work (medium tiles) and one
    // worker per rank: four processes already oversubscribe small hosts,
    // and with no compute to speak of the overlap fraction is noise.
    let default_scale = if smoke { "tiny" } else { "medium" };
    let scale = arg_value(args, "--scale").unwrap_or_else(|| default_scale.into());
    // Bench mode sweeps cores-per-node (the Fig. 9 axis) with one rep
    // per step — the sweep itself already multiplies the run count;
    // smoke keeps a single worker unless told otherwise.
    let default_threads: &[usize] = if smoke { &[1] } else { &[1, 2, 4] };
    let threads = parse_threads(arg_value(args, "--threads"), default_threads);
    let reps: usize = arg_value(args, "--reps")
        .map(|v| v.parse().unwrap())
        .unwrap_or(1);

    // In-process ground truth, before any socket work.
    let space = tce::TileSpace::build(&scale_of(&scale));
    let ws = tce::build_workspace(&space, 1);
    let e_ref = verify::reference_energy(&ws);
    eprintln!("# reference energy (single process): {e_ref:.15}");

    let dir = std::env::temp_dir().join(format!("comm_bench_{}", std::process::id()));
    std::fs::create_dir_all(&dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    let exe = std::env::current_exe().map_err(|e| e.to_string())?;
    let mut children = Vec::new();
    for r in 1..ranks {
        let mut cmd = std::process::Command::new(&exe);
        cmd.args(["--rank", &r.to_string()])
            .args(["--ranks", &ranks.to_string()])
            .args(["--port", &port.to_string()])
            .args(["--scale", &scale])
            .args([
                "--threads",
                &threads
                    .iter()
                    .map(usize::to_string)
                    .collect::<Vec<_>>()
                    .join(","),
            ])
            .args(["--reps", &reps.to_string()])
            .args(["--dir", &dir.display().to_string()]);
        if smoke {
            cmd.arg("--smoke");
        }
        children.push((r, cmd.spawn().map_err(|e| format!("spawn rank {r}: {e}"))?));
    }

    // The parent is rank 0.
    let outs0 = run_rank(0, ranks, port, &scale, &threads, reps, smoke);

    for (r, mut ch) in children {
        let status = ch.wait().map_err(|e| e.to_string())?;
        if !status.success() {
            return Err(format!("rank {r} exited with {status}"));
        }
    }
    let mut per_rank = vec![outs0];
    for r in 1..ranks {
        let path = dir.join(format!("rank{r}.txt"));
        let text =
            std::fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))?;
        per_rank.push(parse_fragment(&text));
    }
    let _ = std::fs::remove_dir_all(&dir);

    if smoke {
        return check_smoke(ranks, e_ref, &per_rank);
    }
    aggregate(ranks, &scale, &threads, e_ref, &per_rank)
}

/// The chaos matrix: every named fault schedule plus a clean control,
/// each on its own 4-rank socket mesh (fresh port window per schedule)
/// with per-rank seeds derived from one printed base seed. The gate is
/// the paper's correctness claim under an unreliable network: every
/// schedule terminates and reproduces the reference energy to 1e-12,
/// and the clean control shows zero recovery activity.
/// Wait for every child of one schedule, reporting the first failure
/// only after all of them have exited. Early-returning on the first bad
/// status would orphan the rest of the mesh — still dialing, still
/// holding listener ports — and poison the next schedule's connect.
fn reap(children: Vec<(usize, std::process::Child)>, replay: &str) -> Result<(), String> {
    let mut err = None;
    for (r, mut ch) in children {
        match ch.wait() {
            Ok(status) if status.success() => {}
            Ok(status) => {
                err.get_or_insert(format!("rank {r} exited with {status}; {replay}"));
            }
            Err(e) => {
                err.get_or_insert(format!("rank {r}: {e}; {replay}"));
            }
        }
    }
    match err {
        Some(e) => Err(e),
        None => Ok(()),
    }
}

fn chaos(ranks: usize, args: &[String]) -> Result<(), String> {
    let seed_base: u64 = arg_value(args, "--seed")
        .map(|v| {
            let v = v.trim_start_matches("0x");
            u64::from_str_radix(v, 16).or_else(|_| v.parse()).unwrap()
        })
        .unwrap_or(0xC0FF_EE00);
    // Own port range, one window of `ranks` ports per schedule:
    // listener ports are not reused across schedules, so lingering
    // TIME_WAIT connections from the previous mesh cannot fail the next
    // bind. The whole range must sit BELOW the kernel's ephemeral port
    // span (32768+ on Linux): every dial in the mesh draws an ephemeral
    // source port, and a listener bind that aliases one stalls for a
    // minute and then dies with EADDRINUSE.
    let base_port: u16 = arg_value(args, "--port")
        .map(|v| v.parse().unwrap())
        .unwrap_or_else(|| 18000 + (std::process::id() % 90) as u16 * 64);

    let space = tce::TileSpace::build(&tce::scale::tiny());
    let ws = tce::build_workspace(&space, 1);
    let e_ref = verify::reference_energy(&ws);
    eprintln!("# reference energy (single process): {e_ref:.15}");
    eprintln!(
        "# chaos base seed: {seed_base:#x} (replay: comm_bench --chaos --seed {seed_base:x})"
    );

    let dir = std::env::temp_dir().join(format!("comm_chaos_{}", std::process::id()));
    std::fs::create_dir_all(&dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    let exe = std::env::current_exe().map_err(|e| e.to_string())?;

    let mut schedules: Vec<&str> = FaultPlan::schedule_names().to_vec();
    schedules.push("clean");
    for (i, schedule) in schedules.iter().enumerate() {
        let seed = seed_base.wrapping_add((i as u64) << 8);
        let port = base_port + (i * ranks) as u16;
        let replay = format!("schedule `{schedule}` seed {seed:#x}");
        let mut children = Vec::new();
        for r in 1..ranks {
            let mut cmd = std::process::Command::new(&exe);
            cmd.args(["--rank", &r.to_string()])
                .args(["--ranks", &ranks.to_string()])
                .args(["--port", &port.to_string()])
                .args(["--chaos-schedule", schedule])
                .args(["--chaos-seed", &seed.to_string()])
                .args(["--dir", &dir.display().to_string()]);
            children.push((r, cmd.spawn().map_err(|e| format!("spawn rank {r}: {e}"))?));
        }
        let out0 = run_rank_chaos(0, ranks, port, schedule, seed);
        reap(children, &replay)?;
        let mut outs = vec![out0];
        for r in 1..ranks {
            let path = dir.join(format!("rank{r}.txt"));
            let text =
                std::fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))?;
            outs.extend(parse_fragment(&text));
        }
        let energy = outs[0].energy.ok_or("rank 0 must report an energy")?;
        let d = tensor_kernels::rel_diff(e_ref, energy);
        let sum = |f: &dyn Fn(&RunOut) -> u64| outs.iter().map(f).sum::<u64>();
        let (timeouts, retries) = (sum(&|o| o.timeouts), sum(&|o| o.retries));
        let dups = sum(&|o| o.dup_requests + o.dup_replies);
        let injected = sum(&|o| o.injected);
        let (hits, stale) = (sum(&|o| o.cache_hits), sum(&|o| o.stale_reads));
        let (donated, stolen) = (sum(&|o| o.steal_donated), sum(&|o| o.steal_stolen));
        println!(
            "{schedule:>10} seed {seed:#012x}: rel diff {d:.2e}  {injected} faults injected  {retries} retries  {timeouts} timeouts  {dups} dups detected  {hits} cache hits  {stale} stale reads  {stolen} chains migrated"
        );
        // Exactly-once chain migration under faults: a lost steal reply
        // retransmits into the victim's *recorded* grant, so the chain
        // count must reconcile even when the wire drops frames.
        if donated != stolen {
            return Err(format!(
                "{donated} chains donated but {stolen} received under faults — \
                 a steal grant was lost or double-applied; {replay}"
            ));
        }
        // The coherence gate: with `verify_reads` armed on every rank,
        // each cache hit was compared against a fresh owner fetch. Any
        // fault that left a stale block cached shows up here.
        if stale != 0 {
            return Err(format!(
                "{stale} cached reads observed stale data under faults; {replay}"
            ));
        }
        if d >= 1e-12 {
            return Err(format!(
                "energy {energy} diverged from reference {e_ref} ({d:.2e}); {replay}"
            ));
        }
        if *schedule == "clean" && timeouts + retries + dups != 0 {
            return Err(format!(
                "clean control must show zero recovery activity \
                 ({timeouts} timeouts, {retries} retries, {dups} dups); {replay}"
            ));
        }
    }
    // ---- the kill matrix: scripted rank deaths over the live mesh ----
    //
    // Every death schedule (plus a detector-armed clean control) gets a
    // fresh 4-rank socket mesh; the highest rank is the victim. The
    // gates are the failure-model claims: every rank **terminates**
    // (the detector's poison-release is the only way out of a barrier
    // with a corpse in it), the survivors confirm the death, the
    // restart schedule produces a rejoin, and the armed detector on a
    // healthy mesh shows zero suspects, zero deaths, and an unchanged
    // 1e-12 energy. Each line prints the seed that replays it.
    let mut kill_schedules: Vec<&str> = FaultPlan::death_schedule_names().to_vec();
    kill_schedules.push("clean");
    let victim = ranks - 1;
    for (i, schedule) in kill_schedules.iter().enumerate() {
        // Offset past the fault-schedule seed range so no kill run ever
        // shares dice with a fault run of the same base seed.
        let seed = seed_base
            .wrapping_add(0x00D0_0000)
            .wrapping_add((i as u64) << 8);
        let port = base_port + ((schedules.len() + i) * ranks) as u16;
        let replay = format!(
            "kill schedule `{schedule}` seed {seed:#x} (replay: comm_bench --chaos --seed {seed_base:x})"
        );
        let mut children = Vec::new();
        for r in 1..ranks {
            let mut cmd = std::process::Command::new(&exe);
            cmd.args(["--rank", &r.to_string()])
                .args(["--ranks", &ranks.to_string()])
                .args(["--port", &port.to_string()])
                .args(["--kill-schedule", schedule])
                .args(["--chaos-seed", &seed.to_string()])
                .args(["--dir", &dir.display().to_string()]);
            children.push((r, cmd.spawn().map_err(|e| format!("spawn rank {r}: {e}"))?));
        }
        let out0 = run_rank_kill(0, ranks, port, schedule, seed);
        reap(children, &replay)?;
        let mut outs = vec![out0];
        for r in 1..ranks {
            let path = dir.join(format!("rank{r}.txt"));
            let text =
                std::fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))?;
            outs.extend(parse_fragment(&text));
        }
        let survivors = &outs[..victim];
        let sum = |f: &dyn Fn(&RunOut) -> u64| outs.iter().map(f).sum::<u64>();
        let deaths: u64 = survivors.iter().map(|o| o.confirmed_deaths).sum();
        let suspects: u64 = survivors.iter().map(|o| o.suspects).sum();
        let rejoins = sum(&|o| o.rejoins);
        let injected = sum(&|o| o.injected);
        println!(
            "{schedule:>12} seed {seed:#012x}: {injected} frames blackholed  {suspects} suspects  {deaths} deaths confirmed by survivors  {rejoins} rejoins  all {ranks} ranks terminated"
        );
        if *schedule == "clean" {
            let energy = outs[0].energy.ok_or("rank 0 must report an energy")?;
            let d = tensor_kernels::rel_diff(e_ref, energy);
            if d >= 1e-12 {
                return Err(format!(
                    "armed detector perturbed a healthy run: energy {energy} vs {e_ref} ({d:.2e}); {replay}"
                ));
            }
            let all_suspects = sum(&|o| o.suspects);
            let all_deaths = sum(&|o| o.confirmed_deaths);
            let recovery = sum(&|o| o.timeouts + o.retries + o.dup_requests + o.dup_replies);
            let stale = sum(&|o| o.stale_reads);
            if all_suspects + all_deaths + recovery + stale != 0 {
                return Err(format!(
                    "armed detector on a healthy mesh must be pure bookkeeping: \
                     {all_suspects} suspects, {all_deaths} deaths, {recovery} recovery events, \
                     {stale} stale reads; {replay}"
                ));
            }
        } else {
            if deaths == 0 {
                return Err(format!(
                    "no survivor confirmed the victim's death; {replay}"
                ));
            }
            if injected == 0 {
                return Err(format!("the kill never fired; {replay}"));
            }
            if *schedule == "kill_restart" && rejoins == 0 {
                return Err(format!(
                    "the restarted rank was never welcomed back; {replay}"
                ));
            }
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
    println!(
        "CHAOS OK: every fault schedule reproduced the reference energy; \
         every death schedule terminated with the victim detected"
    );
    Ok(())
}

fn check_smoke(ranks: usize, e_ref: f64, per_rank: &[Vec<RunOut>]) -> Result<(), String> {
    let mut worst: f64 = 0.0;
    for o in &per_rank[0] {
        let e = o.energy.ok_or("rank 0 must report an energy")?;
        let d = tensor_kernels::rel_diff(e_ref, e);
        worst = worst.max(d);
        println!(
            "{:>3} over {ranks}-rank sockets: {e:.15}  (rel diff {d:.2e}, {} rndv, {} eager payloads)",
            o.name, o.rndv, o.eager
        );
    }
    let all = per_rank.iter().flatten();
    let recovery: u64 = all
        .clone()
        .map(|o| o.timeouts + o.retries + o.dup_requests + o.dup_replies)
        .sum();
    if recovery != 0 {
        return Err(format!(
            "smoke FAILED: healthy mesh showed recovery activity ({recovery} events) — \
             retry timers must never fire without faults"
        ));
    }
    // Smoke runs the cache with `verify_reads` on every rank: each hit
    // was compared against a fresh owner fetch. Zero tolerance.
    let (hits, stale) = all.fold((0u64, 0u64), |(h, s), o| {
        (h + o.cache_hits, s + o.stale_reads)
    });
    if stale != 0 {
        return Err(format!(
            "smoke FAILED: {stale} cached reads observed stale data on a healthy mesh"
        ));
    }
    if worst < 1e-12 {
        println!(
            "SMOKE OK: all variants match the single-process reference \
             ({hits} verified cache hits, 0 stale)"
        );
        Ok(())
    } else {
        Err(format!("smoke FAILED: worst rel diff {worst:.2e}"))
    }
}

fn aggregate(
    ranks: usize,
    scale: &str,
    threads: &[usize],
    e_ref: f64,
    per_rank: &[Vec<RunOut>],
) -> Result<(), String> {
    let nruns = per_rank[0].len();
    let mut rows = Vec::new();
    // (name, threads, wall_ns, overlap) per row, for the sweep summary.
    let mut sweep_rows: Vec<(String, u64, u64, f64)> = Vec::new();
    let mut total_stolen = 0u64;
    for i in 0..nruns {
        let name = per_rank[0][i].name.clone();
        let row_threads = per_rank[0][i].threads;
        // Wall time of the collective run is the slowest rank's.
        let wall_ns = per_rank.iter().map(|rs| rs[i].wall_ns).max().unwrap_or(0);
        let sum = |f: &dyn Fn(&RunOut) -> u64| per_rank.iter().map(|rs| f(&rs[i])).sum::<u64>();
        let comm_ns = sum(&|o| o.comm_ns);
        let overlapped_ns = sum(&|o| o.overlapped_ns);
        let overlap = if comm_ns == 0 {
            0.0
        } else {
            overlapped_ns as f64 / comm_ns as f64
        };
        let mut lats: Vec<u64> = per_rank
            .iter()
            .flat_map(|rs| rs[i].lat_ns.clone())
            .collect();
        lats.sort_unstable();
        let energy = per_rank[0][i].energy.ok_or("rank 0 must report energy")?;
        let d = tensor_kernels::rel_diff(e_ref, energy);
        if d >= 1e-12 {
            return Err(format!(
                "{name}: energy {energy} vs reference {e_ref} ({d:.2e})"
            ));
        }
        // The no-overhead gate: on a healthy mesh the retry/dedup
        // machinery must be pure bookkeeping — zero events.
        let recovery = sum(&|o| o.timeouts + o.retries + o.dup_requests + o.dup_replies);
        if recovery != 0 {
            return Err(format!(
                "{name}: healthy mesh showed {recovery} recovery events \
                 ({} timeouts, {} retries, {} dup_requests, {} dup_replies; \
                 get p99 {:.1} us) — retry timers must never fire without faults",
                sum(&|o| o.timeouts),
                sum(&|o| o.retries),
                sum(&|o| o.dup_requests),
                sum(&|o| o.dup_replies),
                percentile_us(&lats, 99.0),
            ));
        }
        // Cache effectiveness and wire-reduction ratios for this run.
        let (hits, joins, misses) = (
            sum(&|o| o.cache_hits),
            sum(&|o| o.cache_joins),
            sum(&|o| o.cache_misses),
        );
        let lookups = hits + joins + misses;
        let hit_rate = if lookups == 0 {
            0.0
        } else {
            (hits + joins) as f64 / lookups as f64
        };
        let (coalesced, gets) = (sum(&|o| o.coalesced_gets), sum(&|o| o.gets));
        let coalesce_ratio = if gets == 0 {
            0.0
        } else {
            coalesced as f64 / gets as f64
        };
        let (multi_gets, multi_parts) = (sum(&|o| o.multi_gets), sum(&|o| o.multi_parts));
        let occupancy = if multi_gets == 0 {
            0.0
        } else {
            multi_parts as f64 / multi_gets as f64
        };
        // Steal accounting must reconcile: every chain a victim donated
        // landed on exactly one thief (the recorded-grant idempotency
        // story — a drift here means chains were lost or double-run).
        let (donated, stolen) = (sum(&|o| o.steal_donated), sum(&|o| o.steal_stolen));
        if donated != stolen {
            return Err(format!(
                "{name}: {donated} chains donated but {stolen} received — \
                 the steal protocol lost or duplicated a grant"
            ));
        }
        total_stolen += stolen;
        println!(
            "{name:>14}: wall {:.1} ms  overlap {overlap:.3}  comm {:.2} ms  {} eager / {} rndv payloads  {:.2} MB on wire  get p50 {:.1} us p99 {:.1} us",
            wall_ns as f64 / 1e6,
            comm_ns as f64 / 1e6,
            sum(&|o| o.eager),
            sum(&|o| o.rndv),
            sum(&|o| o.bytes_tx) as f64 / 1e6,
            percentile_us(&lats, 50.0),
            percentile_us(&lats, 99.0),
        );
        println!(
            "{:>14}  steal: {} reqs, {stolen} chains migrated ({:.1} KB working set), {} local claims, {} deque steals, {} externally seeded tasks",
            "",
            sum(&|o| o.steal_reqs),
            sum(&|o| o.steal_stolen_bytes) as f64 / 1e3,
            sum(&|o| o.steal_local_claimed),
            sum(&|o| o.engine_local_steals),
            sum(&|o| o.engine_external_tasks),
        );
        println!(
            "{:>12}  cache hit rate {hit_rate:.3} ({hits} hits / {joins} joins / {misses} misses)  coalesce ratio {coalesce_ratio:.3}  batch occupancy {occupancy:.2} ({multi_parts} gets in {multi_gets} frames)",
            ""
        );
        sweep_rows.push((name.clone(), row_threads, wall_ns, overlap));
        rows.push(format!(
            "    {{\n      \"name\": \"{name}\",\n      \"threads\": {row_threads},\n      \"wall_ns\": {wall_ns},\n      \"energy_rel_diff\": {d:.3e},\n      \"overlap_fraction\": {overlap:.6},\n      \"comm_ns\": {comm_ns},\n      \"overlapped_ns\": {overlapped_ns},\n      \"steal\": {{\"requests\": {}, \"donated_chains\": {donated}, \"stolen_chains\": {stolen}, \"donated_bytes\": {}, \"stolen_bytes\": {}, \"local_claimed\": {}, \"engine_local_steals\": {}, \"engine_external_tasks\": {}}},\n      \"eager_payloads\": {},\n      \"rndv_payloads\": {},\n      \"bytes_tx\": {},\n      \"bytes_rx\": {},\n      \"gets\": {},\n      \"puts\": {},\n      \"accs\": {},\n      \"ga_local_bytes\": {},\n      \"ga_remote_bytes\": {},\n      \"recovery\": {{\"timeouts\": {}, \"retries\": {}, \"dup_requests\": {}, \"dup_replies\": {}}},\n      \"cache\": {{\"hits\": {hits}, \"joins\": {joins}, \"misses\": {misses}, \"invalidations\": {}, \"hit_rate\": {hit_rate:.6}, \"hit_bytes\": {}}},\n      \"coalesce\": {{\"coalesced_gets\": {coalesced}, \"coal_bytes\": {}, \"ratio\": {coalesce_ratio:.6}}},\n      \"batch\": {{\"multi_gets\": {multi_gets}, \"multi_parts\": {multi_parts}, \"occupancy\": {occupancy:.6}, \"req_bytes\": {}, \"wire_bytes\": {}}},\n      \"get_latency_us\": {{\"p50\": {:.2}, \"p90\": {:.2}, \"p99\": {:.2}}}\n    }}",
            sum(&|o| o.steal_reqs),
            sum(&|o| o.steal_donated_bytes),
            sum(&|o| o.steal_stolen_bytes),
            sum(&|o| o.steal_local_claimed),
            sum(&|o| o.engine_local_steals),
            sum(&|o| o.engine_external_tasks),
            sum(&|o| o.eager),
            sum(&|o| o.rndv),
            sum(&|o| o.bytes_tx),
            sum(&|o| o.bytes_rx),
            gets,
            sum(&|o| o.puts),
            sum(&|o| o.accs),
            sum(&|o| o.ga_local),
            sum(&|o| o.ga_remote),
            sum(&|o| o.timeouts),
            sum(&|o| o.retries),
            sum(&|o| o.dup_requests),
            sum(&|o| o.dup_replies),
            sum(&|o| o.cache_invals),
            sum(&|o| o.cache_hit_bytes),
            sum(&|o| o.get_coal_bytes),
            sum(&|o| o.get_req_bytes),
            sum(&|o| o.get_wire_bytes),
            percentile_us(&lats, 50.0),
            percentile_us(&lats, 90.0),
            percentile_us(&lats, 99.0),
        ));
    }
    if total_stolen == 0 {
        return Err(
            "steal demonstration row migrated zero chains — the cross-rank \
             steal path must demonstrably fire"
                .into(),
        );
    }

    // The Fig. 9 cores-per-node sweep: v5-vs-v2 wall time and overlap at
    // each worker count, with speedup relative to one worker per rank.
    let wall_of = |prefix: &str, t: usize| {
        sweep_rows
            .iter()
            .find(|(n, th, _, _)| n == &format!("{prefix}_t{t}") && *th == t as u64)
            .map(|&(_, _, w, o)| (w, o))
    };
    let mut sweep_json = Vec::new();
    for &t in threads {
        let (Some((w5, o5)), Some((w2, o2))) = (wall_of("v5_prefetch", t), wall_of("v2_noprio", t))
        else {
            continue;
        };
        let base = wall_of("v5_prefetch", threads[0]).map_or(0, |(w, _)| w);
        let speedup = if w5 == 0 {
            0.0
        } else {
            base as f64 / w5 as f64
        };
        println!(
            "sweep t{t}: v5 {:.1} ms (overlap {o5:.3}, {speedup:.2}x vs t{}), v2 {:.1} ms (overlap {o2:.3})",
            w5 as f64 / 1e6,
            threads[0],
            w2 as f64 / 1e6,
        );
        sweep_json.push(format!(
            "    {{\"threads\": {t}, \"v5_wall_ns\": {w5}, \"v2_wall_ns\": {w2}, \"v5_overlap\": {o5:.6}, \"v2_overlap\": {o2:.6}, \"v5_speedup_vs_t{}\": {speedup:.4}}}",
            threads[0]
        ));
    }
    let json = format!(
        "{{\n  \"ranks\": {ranks},\n  \"scale\": \"{scale}\",\n  \"threads_sweep\": [{}],\n  \"reference_energy\": {e_ref:.17e},\n  \"sweep\": [\n{}\n  ],\n  \"runs\": [\n{}\n  ]\n}}\n",
        threads
            .iter()
            .map(usize::to_string)
            .collect::<Vec<_>>()
            .join(", "),
        sweep_json.join(",\n"),
        rows.join(",\n")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_comm.json");
    let mut f = std::fs::File::create(path).map_err(|e| e.to_string())?;
    f.write_all(json.as_bytes()).map_err(|e| e.to_string())?;
    println!("wrote {path}");
    Ok(())
}

fn main() -> std::process::ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let ranks: usize = arg_value(&args, "--ranks")
        .map(|v| v.parse().unwrap())
        .unwrap_or(4);
    // Distinct port windows across concurrent invocations.
    let port: u16 = arg_value(&args, "--port")
        .map(|v| v.parse().unwrap())
        .unwrap_or_else(|| 24000 + (std::process::id() % 700) as u16 * 8);
    match arg_value(&args, "--rank") {
        Some(r) => {
            child(r.parse().unwrap(), ranks, port, &args);
            std::process::ExitCode::SUCCESS
        }
        None => {
            let res = if has_flag(&args, "--chaos") {
                chaos(ranks, &args)
            } else {
                parent(ranks, port, &args)
            };
            match res {
                Ok(()) => std::process::ExitCode::SUCCESS,
                Err(msg) => {
                    eprintln!("error: {msg}");
                    std::process::ExitCode::FAILURE
                }
            }
        }
    }
}
