//! Multi-process communication benchmark and smoke check.
//!
//! Launches `R` ranks as real OS processes (re-executing this binary)
//! connected by the TCP mesh transport, runs CCSD variants through the
//! distributed Global Arrays backend, and aggregates per-rank fragments
//! into `BENCH_comm.json`: wire bytes, eager/rendezvous payload counts,
//! get-latency percentiles, and the communication/computation overlap
//! fraction. The two default runs are the paper's headline ablation —
//! v5 with the priority-driven prefetch pipeline against v2 (priorities
//! off): without priorities the in-flight caps drain reader gets in
//! class order, so GEMMs starve while transfers run and the overlap
//! fraction drops.
//!
//! ```text
//! comm_bench [--ranks R] [--scale S] [--threads T] [--reps N] [--port P]
//! comm_bench --smoke        # v1..v5 + fused v5 energies vs the reference
//! ```
//!
//! `--smoke` is the CI gate: every variant on the 4-rank socket mesh must
//! reproduce the single-process reference energy to 1e-12.

use bench_harness::{arg_value, has_flag};
use ccsd::{verify, DistRank, VariantCfg};
use comm::SocketTransport;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::time::Duration;

/// One variant execution's rank-local measurements.
struct RunOut {
    name: String,
    energy: Option<f64>,
    comm_ns: u64,
    overlapped_ns: u64,
    eager: u64,
    rndv: u64,
    bytes_tx: u64,
    bytes_rx: u64,
    gets: u64,
    puts: u64,
    accs: u64,
    ga_local: u64,
    ga_remote: u64,
    lat_ns: Vec<u64>,
}

fn scale_of(name: &str) -> tce::SpaceConfig {
    match name {
        "tiny" => tce::scale::tiny(),
        "small" => tce::scale::small(),
        "medium" => tce::scale::medium(),
        "paper" => tce::scale::paper(),
        other => panic!("unknown scale `{other}`"),
    }
}

/// The benchmark's run list: the prefetch pipeline with priorities (v5)
/// against the no-priority ablation (v2); smoke mode checks all five
/// variants plus the fused-epilogue v5 instead.
fn run_list(smoke: bool) -> Vec<(String, VariantCfg, bool)> {
    if smoke {
        VariantCfg::all()
            .into_iter()
            .map(|cfg| (cfg.name.to_string(), cfg, true))
            // The fused chain epilogue must survive the socket mesh too.
            .chain([("v5f".to_string(), VariantCfg::v5().fused(), true)])
            .collect()
    } else {
        vec![
            ("v5_prefetch".into(), VariantCfg::v5(), true),
            ("v2_noprio".into(), VariantCfg::v2(), true),
        ]
    }
}

/// Execute this rank's share of every run over the socket mesh. Each
/// run is repeated `reps` times with counters summed: on a small host
/// a single execution's overlap fraction is scheduling noise.
fn run_rank(
    rank: usize,
    ranks: usize,
    port: u16,
    scale: &str,
    threads: usize,
    reps: usize,
    smoke: bool,
) -> Vec<RunOut> {
    let space = tce::TileSpace::build(&scale_of(scale));
    let transport = SocketTransport::connect(rank, ranks, port, Duration::from_secs(60))
        .unwrap_or_else(|e| panic!("rank {rank}: mesh connect failed: {e}"));
    // The smoke check keeps the stock configuration; the benchmark
    // splits the eager threshold through the middle of medium-scale
    // block sizes so both payload protocols are exercised and measured.
    let cfg = comm::CommConfig {
        eager_threshold: if smoke { 4096 } else { 32 * 1024 },
        ..comm::CommConfig::default()
    };
    let dr = DistRank::with_config(Box::new(transport), &space, &[tce::Kernel::T2_7], cfg);
    let mut outs = Vec::new();
    for (name, cfg, prefetch) in run_list(smoke) {
        let mut acc: Option<RunOut> = None;
        for _ in 0..reps.max(1) {
            let ep = dr.endpoint();
            let ga_stats = dr.workspace().ga.stats();
            // Drain cumulative state so this run measures only itself.
            let _ = ep.take_trace();
            let _ = ep.take_latencies();
            let s0 = ep.stats();
            let (l0, r0) = (ga_stats.local_bytes(), ga_stats.remote_bytes());

            let run = dr.run_variant(cfg, threads, prefetch);

            let s1 = ep.stats();
            let mut trace = run.report.trace;
            trace.absorb(&ep.take_trace());
            let node = xtrace::analyze::comm_overlap(&trace)
                .remove(&(rank as u32))
                .unwrap_or_default();
            let out = acc.get_or_insert_with(|| RunOut {
                name: name.clone(),
                energy: None,
                comm_ns: 0,
                overlapped_ns: 0,
                eager: 0,
                rndv: 0,
                bytes_tx: 0,
                bytes_rx: 0,
                gets: 0,
                puts: 0,
                accs: 0,
                ga_local: 0,
                ga_remote: 0,
                lat_ns: Vec::new(),
            });
            out.energy = run.energy;
            out.comm_ns += node.comm;
            out.overlapped_ns += node.overlapped;
            out.eager += s1.eager_payloads - s0.eager_payloads;
            out.rndv += s1.rndv_payloads - s0.rndv_payloads;
            out.bytes_tx += s1.bytes_tx - s0.bytes_tx;
            out.bytes_rx += s1.bytes_rx - s0.bytes_rx;
            out.gets += s1.gets - s0.gets;
            out.puts += s1.puts - s0.puts;
            out.accs += s1.accs - s0.accs;
            out.ga_local += ga_stats.local_bytes() - l0;
            out.ga_remote += ga_stats.remote_bytes() - r0;
            out.lat_ns.extend(ep.take_latencies());
        }
        outs.push(acc.expect("reps >= 1"));
    }
    dr.finish();
    outs
}

/// Flat line-oriented fragment format (internal to the bench; only the
/// aggregate is JSON).
fn write_fragment(path: &Path, outs: &[RunOut]) {
    let mut s = String::new();
    for o in outs {
        s.push_str(&format!("run {}\n", o.name));
        if let Some(e) = o.energy {
            s.push_str(&format!("energy {e:.17e}\n"));
        }
        for (k, v) in [
            ("comm_ns", o.comm_ns),
            ("overlapped_ns", o.overlapped_ns),
            ("eager", o.eager),
            ("rndv", o.rndv),
            ("bytes_tx", o.bytes_tx),
            ("bytes_rx", o.bytes_rx),
            ("gets", o.gets),
            ("puts", o.puts),
            ("accs", o.accs),
            ("ga_local", o.ga_local),
            ("ga_remote", o.ga_remote),
        ] {
            s.push_str(&format!("{k} {v}\n"));
        }
        let lats: Vec<String> = o.lat_ns.iter().map(|x| x.to_string()).collect();
        s.push_str(&format!("lat_ns {}\n", lats.join(",")));
    }
    std::fs::write(path, s).expect("write fragment");
}

fn parse_fragment(text: &str) -> Vec<RunOut> {
    let mut outs: Vec<RunOut> = Vec::new();
    for line in text.lines() {
        let (key, val) = line.split_once(' ').unwrap_or((line, ""));
        if key == "run" {
            outs.push(RunOut {
                name: val.to_string(),
                energy: None,
                comm_ns: 0,
                overlapped_ns: 0,
                eager: 0,
                rndv: 0,
                bytes_tx: 0,
                bytes_rx: 0,
                gets: 0,
                puts: 0,
                accs: 0,
                ga_local: 0,
                ga_remote: 0,
                lat_ns: Vec::new(),
            });
            continue;
        }
        let o = outs.last_mut().expect("fragment starts with a run line");
        match key {
            "energy" => o.energy = Some(val.parse().unwrap()),
            "comm_ns" => o.comm_ns = val.parse().unwrap(),
            "overlapped_ns" => o.overlapped_ns = val.parse().unwrap(),
            "eager" => o.eager = val.parse().unwrap(),
            "rndv" => o.rndv = val.parse().unwrap(),
            "bytes_tx" => o.bytes_tx = val.parse().unwrap(),
            "bytes_rx" => o.bytes_rx = val.parse().unwrap(),
            "gets" => o.gets = val.parse().unwrap(),
            "puts" => o.puts = val.parse().unwrap(),
            "accs" => o.accs = val.parse().unwrap(),
            "ga_local" => o.ga_local = val.parse().unwrap(),
            "ga_remote" => o.ga_remote = val.parse().unwrap(),
            "lat_ns" => {
                o.lat_ns = val
                    .split(',')
                    .filter(|t| !t.is_empty())
                    .map(|t| t.parse().unwrap())
                    .collect()
            }
            other => panic!("unknown fragment key `{other}`"),
        }
    }
    outs
}

fn percentile_us(sorted: &[u64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((p / 100.0) * (sorted.len() - 1) as f64).round() as usize;
    sorted[idx] as f64 / 1e3
}

fn child(rank: usize, ranks: usize, port: u16, args: &[String]) {
    let scale = arg_value(args, "--scale").unwrap_or_else(|| "tiny".into());
    let threads: usize = arg_value(args, "--threads")
        .map(|v| v.parse().unwrap())
        .unwrap_or(1);
    let reps: usize = arg_value(args, "--reps")
        .map(|v| v.parse().unwrap())
        .unwrap_or(1);
    let dir = PathBuf::from(arg_value(args, "--dir").expect("child needs --dir"));
    let outs = run_rank(
        rank,
        ranks,
        port,
        &scale,
        threads,
        reps,
        has_flag(args, "--smoke"),
    );
    write_fragment(&dir.join(format!("rank{rank}.txt")), &outs);
}

fn parent(ranks: usize, port: u16, args: &[String]) -> Result<(), String> {
    let smoke = has_flag(args, "--smoke");
    // Bench mode wants real per-chain GEMM work (medium tiles) and one
    // worker per rank: four processes already oversubscribe small hosts,
    // and with no compute to speak of the overlap fraction is noise.
    let default_scale = if smoke { "tiny" } else { "medium" };
    let scale = arg_value(args, "--scale").unwrap_or_else(|| default_scale.into());
    let threads: usize = arg_value(args, "--threads")
        .map(|v| v.parse().unwrap())
        .unwrap_or(1);
    let reps: usize = arg_value(args, "--reps")
        .map(|v| v.parse().unwrap())
        .unwrap_or(if smoke { 1 } else { 3 });

    // In-process ground truth, before any socket work.
    let space = tce::TileSpace::build(&scale_of(&scale));
    let ws = tce::build_workspace(&space, 1);
    let e_ref = verify::reference_energy(&ws);
    eprintln!("# reference energy (single process): {e_ref:.15}");

    let dir = std::env::temp_dir().join(format!("comm_bench_{}", std::process::id()));
    std::fs::create_dir_all(&dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    let exe = std::env::current_exe().map_err(|e| e.to_string())?;
    let mut children = Vec::new();
    for r in 1..ranks {
        let mut cmd = std::process::Command::new(&exe);
        cmd.args(["--rank", &r.to_string()])
            .args(["--ranks", &ranks.to_string()])
            .args(["--port", &port.to_string()])
            .args(["--scale", &scale])
            .args(["--threads", &threads.to_string()])
            .args(["--reps", &reps.to_string()])
            .args(["--dir", &dir.display().to_string()]);
        if smoke {
            cmd.arg("--smoke");
        }
        children.push((r, cmd.spawn().map_err(|e| format!("spawn rank {r}: {e}"))?));
    }

    // The parent is rank 0.
    let outs0 = run_rank(0, ranks, port, &scale, threads, reps, smoke);

    for (r, mut ch) in children {
        let status = ch.wait().map_err(|e| e.to_string())?;
        if !status.success() {
            return Err(format!("rank {r} exited with {status}"));
        }
    }
    let mut per_rank = vec![outs0];
    for r in 1..ranks {
        let path = dir.join(format!("rank{r}.txt"));
        let text =
            std::fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))?;
        per_rank.push(parse_fragment(&text));
    }
    let _ = std::fs::remove_dir_all(&dir);

    if smoke {
        return check_smoke(ranks, e_ref, &per_rank[0]);
    }
    aggregate(ranks, &scale, threads, e_ref, &per_rank)
}

fn check_smoke(ranks: usize, e_ref: f64, rank0: &[RunOut]) -> Result<(), String> {
    let mut worst: f64 = 0.0;
    for o in rank0 {
        let e = o.energy.ok_or("rank 0 must report an energy")?;
        let d = tensor_kernels::rel_diff(e_ref, e);
        worst = worst.max(d);
        println!(
            "{:>3} over {ranks}-rank sockets: {e:.15}  (rel diff {d:.2e}, {} rndv, {} eager payloads)",
            o.name, o.rndv, o.eager
        );
    }
    if worst < 1e-12 {
        println!("SMOKE OK: all variants match the single-process reference");
        Ok(())
    } else {
        Err(format!("smoke FAILED: worst rel diff {worst:.2e}"))
    }
}

fn aggregate(
    ranks: usize,
    scale: &str,
    threads: usize,
    e_ref: f64,
    per_rank: &[Vec<RunOut>],
) -> Result<(), String> {
    let nruns = per_rank[0].len();
    let mut rows = Vec::new();
    for i in 0..nruns {
        let name = per_rank[0][i].name.clone();
        let sum = |f: &dyn Fn(&RunOut) -> u64| per_rank.iter().map(|rs| f(&rs[i])).sum::<u64>();
        let comm_ns = sum(&|o| o.comm_ns);
        let overlapped_ns = sum(&|o| o.overlapped_ns);
        let overlap = if comm_ns == 0 {
            0.0
        } else {
            overlapped_ns as f64 / comm_ns as f64
        };
        let mut lats: Vec<u64> = per_rank
            .iter()
            .flat_map(|rs| rs[i].lat_ns.clone())
            .collect();
        lats.sort_unstable();
        let energy = per_rank[0][i].energy.ok_or("rank 0 must report energy")?;
        let d = tensor_kernels::rel_diff(e_ref, energy);
        if d >= 1e-12 {
            return Err(format!(
                "{name}: energy {energy} vs reference {e_ref} ({d:.2e})"
            ));
        }
        println!(
            "{name:>12}: overlap {overlap:.3}  comm {:.2} ms  {} eager / {} rndv payloads  {:.2} MB on wire  get p50 {:.1} us p99 {:.1} us",
            comm_ns as f64 / 1e6,
            sum(&|o| o.eager),
            sum(&|o| o.rndv),
            sum(&|o| o.bytes_tx) as f64 / 1e6,
            percentile_us(&lats, 50.0),
            percentile_us(&lats, 99.0),
        );
        rows.push(format!(
            "    {{\n      \"name\": \"{name}\",\n      \"energy_rel_diff\": {d:.3e},\n      \"overlap_fraction\": {overlap:.6},\n      \"comm_ns\": {comm_ns},\n      \"overlapped_ns\": {overlapped_ns},\n      \"eager_payloads\": {},\n      \"rndv_payloads\": {},\n      \"bytes_tx\": {},\n      \"bytes_rx\": {},\n      \"gets\": {},\n      \"puts\": {},\n      \"accs\": {},\n      \"ga_local_bytes\": {},\n      \"ga_remote_bytes\": {},\n      \"get_latency_us\": {{\"p50\": {:.2}, \"p90\": {:.2}, \"p99\": {:.2}}}\n    }}",
            sum(&|o| o.eager),
            sum(&|o| o.rndv),
            sum(&|o| o.bytes_tx),
            sum(&|o| o.bytes_rx),
            sum(&|o| o.gets),
            sum(&|o| o.puts),
            sum(&|o| o.accs),
            sum(&|o| o.ga_local),
            sum(&|o| o.ga_remote),
            percentile_us(&lats, 50.0),
            percentile_us(&lats, 90.0),
            percentile_us(&lats, 99.0),
        ));
    }
    let json = format!(
        "{{\n  \"ranks\": {ranks},\n  \"scale\": \"{scale}\",\n  \"threads_per_rank\": {threads},\n  \"reference_energy\": {e_ref:.17e},\n  \"runs\": [\n{}\n  ]\n}}\n",
        rows.join(",\n")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_comm.json");
    let mut f = std::fs::File::create(path).map_err(|e| e.to_string())?;
    f.write_all(json.as_bytes()).map_err(|e| e.to_string())?;
    println!("wrote {path}");
    Ok(())
}

fn main() -> std::process::ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let ranks: usize = arg_value(&args, "--ranks")
        .map(|v| v.parse().unwrap())
        .unwrap_or(4);
    // Distinct port windows across concurrent invocations.
    let port: u16 = arg_value(&args, "--port")
        .map(|v| v.parse().unwrap())
        .unwrap_or_else(|| 24000 + (std::process::id() % 700) as u16 * 8);
    match arg_value(&args, "--rank") {
        Some(r) => {
            child(r.parse().unwrap(), ranks, port, &args);
            std::process::ExitCode::SUCCESS
        }
        None => match parent(ranks, port, &args) {
            Ok(()) => std::process::ExitCode::SUCCESS,
            Err(msg) => {
                eprintln!("error: {msg}");
                std::process::ExitCode::FAILURE
            }
        },
    }
}
