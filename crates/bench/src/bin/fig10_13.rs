//! Figures 10-13: execution traces.
//!
//! * Fig 10 — trace of v4 (priorities decreasing with chain number):
//!   reads interleaved with GEMMs, communication overlapped.
//! * Fig 11 — trace of v2 (no priorities): all reader tasks execute
//!   first, the network floods, and cores idle at the start.
//! * Fig 12 — trace of the original code: communication interleaved with
//!   computation but never overlapped.
//! * Fig 13 — zoomed view of the original trace.
//!
//! Each figure is rendered as an ASCII Gantt chart (a few nodes' rows)
//! plus the quantitative summary the paper reads off the pictures:
//! startup idle before the first GEMM (Fig 10 vs 11) and the
//! communication/computation overlap ratio (Fig 12 vs 10).
//!
//! ```text
//! cargo run --release --bin fig10_13 -- [--scale paper] [--nodes 8]
//!     [--cores 7] [--rows 16] [--csv-dir DIR]
//! ```
//!
//! Defaults to the paper-shaped workload on an 8-node slice of the
//! cluster (32 nodes x 7 rows would not fit a terminal).

use bench_harness::*;
use ccsd::VariantCfg;
use xtrace::analyze;
use xtrace::render::{render, render_range, RenderOpts};

fn summarize(name: &str, trace: &xtrace::Trace) {
    println!(
        "utilization |{}|",
        xtrace::render::sparkline(&analyze::utilization_timeline(trace, 100))
    );
    let stats = analyze::stats(trace);
    let overlap = analyze::comm_overlap(trace);
    let (c, o): (u64, u64) = overlap
        .values()
        .fold((0, 0), |(c, o), n| (c + n.comm, o + n.overlapped));
    let startup = analyze::startup_idle_before(trace, "GEMM").unwrap_or(0);
    let first = analyze::mean_first_start(trace, "GEMM").unwrap_or(0);
    println!(
        "{name}: makespan {:.3} s, idle {:.1}%, comm/comp overlap {:.1}%, \
         first GEMM at {:.4} s (startup idle {:.4} s)",
        (stats.end - stats.begin) as f64 / 1e9,
        100.0 * stats.idle_fraction(),
        100.0 * o as f64 / c.max(1) as f64,
        first as f64 / 1e9,
        startup as f64 / 1e9,
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = scale_from_args(&args);
    let nodes: usize = arg_value(&args, "--nodes")
        .map(|v| v.parse().unwrap())
        .unwrap_or(8);
    let cores: usize = arg_value(&args, "--cores")
        .map(|v| v.parse().unwrap())
        .unwrap_or(7);
    let rows: usize = arg_value(&args, "--rows")
        .map(|v| v.parse().unwrap())
        .unwrap_or(16);
    let csv_dir = arg_value(&args, "--csv-dir");

    let ins = prepare(&scale, nodes);
    let opts = RenderOpts {
        width: 110,
        max_rows: rows,
        legend: true,
    };

    // Figure 10: v4 (with priorities).
    let v4 = run_variant(&ins, VariantCfg::v4(), nodes, cores, true);
    println!("\n=== Figure 10: trace of v4 (priority decreasing with chain number) ===");
    print!("{}", render(&v4.trace, &opts));
    summarize("v4", &v4.trace);

    // Figure 11: v2 (no priorities).
    let v2 = run_variant(&ins, VariantCfg::v2(), nodes, cores, true);
    println!("\n=== Figure 11: trace of v2 (no task priorities) ===");
    print!("{}", render(&v2.trace, &opts));
    summarize("v2", &v2.trace);

    let s4 = analyze::mean_first_start(&v4.trace, "GEMM").unwrap_or(0);
    let s2 = analyze::mean_first_start(&v2.trace, "GEMM").unwrap_or(0);
    println!(
        "\nfirst-GEMM delay v2 / v4 = {:.1}x (the paper's traces make this \"abundantly clear\")",
        s2 as f64 / s4.max(1) as f64
    );

    // Figure 12: the original code.
    let base = run_baseline(&ins, nodes, cores, true);
    println!("\n=== Figure 12: trace of the original NWChem code ===");
    print!("{}", render(&base.trace, &opts));
    summarize("original", &base.trace);
    println!(
        "original: {:.1}% of rank busy time is *blocking* communication — the rank \
         computes nothing while a GET/ADD is in flight (PaRSEC variants: transfers \
         ride the dedicated comm thread)",
        100.0 * analyze::comm_share_of_busy(&base.trace)
    );

    // Figure 13: zoomed view of the original (a window from the middle).
    let (b, e) = base.trace.extent().unwrap();
    let mid = b + (e - b) / 2;
    let win = (e - b) / 50;
    println!("\n=== Figure 13: zoomed trace of the original code ===");
    print!(
        "{}",
        render_range(
            &base.trace,
            mid,
            mid + win,
            &RenderOpts {
                width: 110,
                max_rows: 8,
                legend: true
            }
        )
    );
    println!("(blocking GET/ADD rectangles comparable in length to the GEMMs, never overlapped)");

    if let Some(dir) = csv_dir {
        std::fs::create_dir_all(&dir).unwrap();
        for (name, trace) in [
            ("fig10_v4", &v4.trace),
            ("fig11_v2", &v2.trace),
            ("fig12_original", &base.trace),
        ] {
            let f = std::fs::File::create(format!("{dir}/{name}.csv")).unwrap();
            trace.write_csv(std::io::BufWriter::new(f)).unwrap();
        }
        eprintln!("# wrote trace CSVs to {dir}/");
    }
}
