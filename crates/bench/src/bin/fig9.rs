//! Figure 9: execution time of the original code and PaRSEC variants
//! v1..v5 on 32 nodes of the modeled cluster, sweeping cores/node.
//!
//! ```text
//! cargo run --release --bin fig9 -- [--scale paper] [--nodes 32]
//!     [--cores 1,3,7,11,15] [--csv fig9.csv]
//! ```
//!
//! Prints the execution-time table, the intra-node scaling of the
//! original code (the paper quotes 2.35x at 3 cores and 2.69x at 7), the
//! best-variant-vs-best-original ratio (paper: 2.1x), and the
//! fastest/slowest variant spread at the highest core count (paper:
//! 1.73x).

use bench_harness::*;
use ccsd::VariantCfg;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = scale_from_args(&args);
    let nodes: usize = arg_value(&args, "--nodes")
        .map(|v| v.parse().unwrap())
        .unwrap_or(32);
    let cores: Vec<usize> = arg_value(&args, "--cores")
        .map(|v| v.split(',').map(|x| x.parse().unwrap()).collect())
        .unwrap_or_else(|| vec![1, 3, 7, 11, 15]);

    let ins = prepare(&scale, nodes);

    let mut columns: Vec<(String, Vec<f64>)> = Vec::new();

    // Original code.
    let mut orig = Vec::new();
    for &c in &cores {
        let rep = run_baseline(&ins, nodes, c, false);
        eprintln!("# original {c:>2} cores/node: {:.3} s", rep.seconds());
        orig.push(rep.seconds());
    }
    columns.push(("original".into(), orig.clone()));

    // PaRSEC variants.
    for cfg in VariantCfg::all() {
        let mut col = Vec::new();
        for &c in &cores {
            let rep = run_variant(&ins, cfg, nodes, c, false);
            eprintln!("# {} {c:>2} cores/node: {:.3} s", cfg.name, rep.seconds());
            col.push(rep.seconds());
        }
        columns.push((cfg.name.to_string(), col));
    }

    print_table(
        &format!("Figure 9: icsd_t2_7 execution time (s) on {nodes} nodes"),
        &cores,
        &columns,
    );

    // Headline ratios.
    let best = |v: &[f64]| v.iter().cloned().fold(f64::INFINITY, f64::min);
    let orig_1 = orig[0];
    println!("\n## Headline ratios (paper values in parentheses)");
    for (i, &c) in cores.iter().enumerate() {
        if c == 3 {
            println!(
                "original speedup at 3 cores/node:  {:.2}x (paper: 2.35x)",
                orig_1 / orig[i]
            );
        }
        if c == 7 {
            println!(
                "original speedup at 7 cores/node:  {:.2}x (paper: 2.69x)",
                orig_1 / orig[i]
            );
        }
    }
    let orig_best = best(&orig);
    let last = cores.len() - 1;
    let at_last: Vec<(&str, f64)> = columns[1..]
        .iter()
        .map(|(n, v)| (n.as_str(), v[last]))
        .collect();
    let (fast_name, fast) = at_last
        .iter()
        .cloned()
        .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
        .unwrap();
    let (slow_name, slow) = at_last
        .iter()
        .cloned()
        .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
        .unwrap();
    println!(
        "best variant ({fast_name} @ {} cores) vs best original: {:.2}x (paper: 2.1x)",
        cores[last],
        orig_best / fast
    );
    println!(
        "fastest ({fast_name}) vs slowest ({slow_name}) variant at {} cores/node: {:.2}x (paper: 1.73x)",
        cores[last],
        slow / fast
    );

    if let Some(path) = arg_value(&args, "--csv") {
        write_csv(&path, &cores, &columns).expect("csv write");
        eprintln!("# wrote {path}");
    }
}
