//! Shared harness utilities for the figure-regeneration binaries.

use ccsd::{simulate_baseline, BaselineCfg, VariantCfg};
use parsec_rt::{SchedPolicy, SimEngine};
use std::sync::Arc;
use tce::{inspect, Inspection, SpaceConfig, TileSpace};

/// Parse a `--scale {tiny|small|medium|paper}` argument (default paper).
pub fn scale_from_args(args: &[String]) -> SpaceConfig {
    match args.iter().position(|a| a == "--scale") {
        Some(i) => match args.get(i + 1).map(String::as_str) {
            Some("tiny") => tce::scale::tiny(),
            Some("small") => tce::scale::small(),
            Some("medium") => tce::scale::medium(),
            Some("paper") | None => tce::scale::paper(),
            Some(other) => panic!("unknown scale `{other}`"),
        },
        None => tce::scale::paper(),
    }
}

/// Presence of a boolean flag.
pub fn has_flag(args: &[String], flag: &str) -> bool {
    args.iter().any(|a| a == flag)
}

/// Value of a `--key value` argument.
pub fn arg_value(args: &[String], key: &str) -> Option<String> {
    args.iter()
        .position(|a| a == key)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

/// Run the inspection for a scale/node count, reporting workload size.
pub fn prepare(cfg: &SpaceConfig, nodes: usize) -> Arc<Inspection> {
    let space = TileSpace::build(cfg);
    let ins = Arc::new(inspect(&space, nodes));
    eprintln!(
        "# workload: {} chains, {} GEMMs, max chain {} (o={}, v={} spin orbitals)",
        ins.num_chains(),
        ins.total_gemms,
        ins.max_chain_len,
        space.n_occ(),
        space.n_virt(),
    );
    ins
}

/// Simulate one PaRSEC variant; returns seconds.
pub fn run_variant(
    ins: &Arc<Inspection>,
    cfg: VariantCfg,
    nodes: usize,
    cores: usize,
    trace: bool,
) -> parsec_rt::SimReport {
    let graph = ccsd::build_graph(ins.clone(), cfg, None);
    let policy = if cfg.priorities {
        SchedPolicy::PriorityFifo
    } else {
        SchedPolicy::Fifo
    };
    SimEngine::new(nodes, cores)
        .policy(policy)
        .collect_trace(trace)
        .run(&graph)
}

/// Simulate the original code; returns the report.
pub fn run_baseline(
    ins: &Inspection,
    nodes: usize,
    cores: usize,
    trace: bool,
) -> ccsd::BaselineReport {
    simulate_baseline(ins, &BaselineCfg::new(nodes, cores).collect_trace(trace))
}

/// Format a seconds table: rows = cores/node, columns = configurations.
pub fn print_table(title: &str, cores: &[usize], columns: &[(String, Vec<f64>)]) {
    println!("\n## {title}");
    print!("{:>12}", "cores/node");
    for (name, _) in columns {
        print!("{name:>12}");
    }
    println!();
    for (r, &c) in cores.iter().enumerate() {
        print!("{c:>12}");
        for (_, vals) in columns {
            print!("{:>12.3}", vals[r]);
        }
        println!();
    }
}

/// Write the same table as CSV.
pub fn write_csv(
    path: &str,
    cores: &[usize],
    columns: &[(String, Vec<f64>)],
) -> std::io::Result<()> {
    use std::io::Write;
    let mut f = std::fs::File::create(path)?;
    write!(f, "cores_per_node")?;
    for (name, _) in columns {
        write!(f, ",{name}")?;
    }
    writeln!(f)?;
    for (r, &c) in cores.iter().enumerate() {
        write!(f, "{c}")?;
        for (_, vals) in columns {
            write!(f, ",{:.6}", vals[r])?;
        }
        writeln!(f)?;
    }
    Ok(())
}
