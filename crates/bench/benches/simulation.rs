//! Whole-simulation benchmarks: how fast the discrete-event engine chews
//! through the CCSD workloads (events/second is the DES figure of merit).

use ccsd::{build_graph, simulate_baseline, BaselineCfg, VariantCfg};
use criterion::{criterion_group, criterion_main, Criterion};
use parsec_rt::SimEngine;
use std::hint::black_box;
use std::sync::Arc;
use tce::{inspect, scale, TileSpace};

fn bench_variant_sim(c: &mut Criterion) {
    let space = TileSpace::build(&scale::medium());
    let ins = Arc::new(inspect(&space, 8));
    let mut g = c.benchmark_group("sim_medium_8x7");
    g.sample_size(10);
    for cfg in [VariantCfg::v1(), VariantCfg::v5()] {
        g.bench_function(cfg.name, |b| {
            b.iter(|| {
                let graph = build_graph(ins.clone(), cfg, None);
                black_box(SimEngine::new(8, 7).run(&graph).events)
            })
        });
    }
    g.finish();
}

fn bench_baseline_sim(c: &mut Criterion) {
    let space = TileSpace::build(&scale::medium());
    let ins = inspect(&space, 8);
    let mut g = c.benchmark_group("sim_baseline_8x7");
    g.sample_size(10);
    g.bench_function("original", |b| {
        b.iter(|| black_box(simulate_baseline(&ins, &BaselineCfg::new(8, 7)).makespan))
    });
    g.finish();
}

fn bench_inspection(c: &mut Criterion) {
    let space = TileSpace::build(&scale::medium());
    let mut g = c.benchmark_group("inspection");
    g.sample_size(20);
    g.bench_function("medium_32_nodes", |b| {
        b.iter(|| black_box(inspect(&space, 32).total_gemms))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_variant_sim,
    bench_baseline_sim,
    bench_inspection
);
criterion_main!(benches);
