//! Microbenchmarks of the runtime substrate: scheduler queues, the
//! symbolic tracker, the event queue, the processor-sharing resource, and
//! whole-engine task throughput.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use dcsim::{EventQueue, PsResource};
use parsec_rt::sched::ReadyQueue;
use parsec_rt::{CoarseRuntime, NativeRuntime, SchedPolicy};
use ptg::{Activity, Dep, GraphCtx, Payload, PlainCtx, TaskClass, TaskGraph, TaskKey};
use std::hint::black_box;
use std::sync::Arc;
use std::time::Duration;

fn bench_ready_queue(c: &mut Criterion) {
    let n = 10_000u64;
    let mut g = c.benchmark_group("ready_queue");
    g.throughput(Throughput::Elements(n));
    g.bench_function("push_pop_10k_prio", |b| {
        b.iter(|| {
            let mut q = ReadyQueue::new(SchedPolicy::PriorityFifo);
            for i in 0..n {
                q.push(TaskKey::new(0, &[i as i64]), (i % 100) as i64);
            }
            while let Some(k) = q.pop() {
                black_box(k);
            }
        })
    });
    g.finish();
}

fn bench_event_queue(c: &mut Criterion) {
    let n = 10_000u64;
    let mut g = c.benchmark_group("event_queue");
    g.throughput(Throughput::Elements(n));
    g.bench_function("post_pop_10k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            for i in 0..n {
                q.post(i * 7 % 1000, i);
            }
            while let Some(e) = q.pop() {
                black_box(e);
            }
        })
    });
    g.finish();
}

fn bench_ps_resource(c: &mut Criterion) {
    let n = 1_000u64;
    let mut g = c.benchmark_group("ps_resource");
    g.throughput(Throughput::Elements(n));
    g.bench_function("submit_drain_1k", |b| {
        b.iter(|| {
            let mut ps = PsResource::new(8.0);
            for i in 0..n {
                ps.submit(i, 100.0 + i as f64);
            }
            while let Some((t, gen)) = ps.poll() {
                black_box(ps.tick(t, gen));
            }
        })
    });
    g.finish();
}

/// A wide fan-out graph of trivial tasks: measures pure dispatch overhead
/// of the native engine (tasks/second).
struct Trivial {
    n: i64,
}
impl TaskClass for Trivial {
    fn name(&self) -> &str {
        "T"
    }
    fn num_flows(&self) -> usize {
        1
    }
    fn roots(&self, _ctx: &dyn GraphCtx, out: &mut Vec<TaskKey>) {
        for i in 0..self.n {
            out.push(TaskKey::new(0, &[i]));
        }
    }
    fn num_inputs(&self, _k: TaskKey, _c: &dyn GraphCtx) -> usize {
        0
    }
    fn successors(&self, _k: TaskKey, _c: &dyn GraphCtx, _out: &mut Vec<Dep>) {}
    fn execute(
        &self,
        k: TaskKey,
        _c: &dyn GraphCtx,
        _i: &mut [Option<Payload>],
    ) -> Vec<Option<Payload>> {
        black_box(k.params[0]);
        vec![None]
    }
    fn activity(&self) -> Activity {
        Activity::Compute
    }
}

fn bench_native_dispatch(c: &mut Criterion) {
    let n = 5_000i64;
    let mut g = c.benchmark_group("native_engine");
    g.sample_size(20);
    g.throughput(Throughput::Elements(n as u64));
    g.bench_function("dispatch_5k_tasks_2_threads", |b| {
        b.iter(|| {
            let graph = TaskGraph::new(
                vec![Arc::new(Trivial { n })],
                Arc::new(PlainCtx { nodes: 1 }),
            );
            let rep = NativeRuntime::new(2).run(&graph);
            black_box(rep.tasks)
        })
    });
    g.finish();
}

/// Dispatch-throughput comparison: the coarse-locked baseline engine vs
/// the sharded work-stealing engine on a wide graph of 100k empty-body
/// tasks at 1/2/4/8 threads. With empty bodies, wall time *is* dispatch
/// cost, so tasks/second isolates the locking discipline — the same
/// methodology as the paper's mutex-operation counts for v3 vs v5.
/// Results are printed and written to `BENCH_dispatch.json` at the repo
/// root.
fn bench_dispatch_throughput(_c: &mut Criterion) {
    const TASKS: i64 = 100_000;
    const THREADS: [usize; 4] = [1, 2, 4, 8];
    const RUNS: usize = 3;

    let measure = |engine: &str, threads: usize| -> f64 {
        let graph = TaskGraph::new(
            vec![Arc::new(Trivial { n: TASKS })],
            Arc::new(PlainCtx { nodes: 1 }),
        );
        let mut best = Duration::MAX;
        // One warmup run, then best-of-RUNS.
        for r in 0..=RUNS {
            let (tasks, wall) = match engine {
                "coarse" => {
                    let rep = CoarseRuntime::new(threads).run(&graph);
                    (rep.tasks, rep.wall)
                }
                _ => {
                    let rep = NativeRuntime::new(threads).run(&graph);
                    (rep.tasks, rep.wall)
                }
            };
            assert_eq!(tasks, TASKS as u64);
            if r > 0 && wall < best {
                best = wall;
            }
        }
        TASKS as f64 / best.as_secs_f64()
    };

    let mut coarse = Vec::new();
    let mut sharded = Vec::new();
    for &t in &THREADS {
        let cps = measure("coarse", t);
        let sps = measure("sharded", t);
        println!(
            "bench dispatch_100k/{t}_threads  coarse {:>12.0} tasks/s   sharded {:>12.0} tasks/s   speedup {:.2}x",
            cps,
            sps,
            sps / cps
        );
        coarse.push(cps);
        sharded.push(sps);
    }

    let row = |v: &[f64]| {
        v.iter()
            .map(|x| format!("{x:.0}"))
            .collect::<Vec<_>>()
            .join(", ")
    };
    let speedups = THREADS
        .iter()
        .enumerate()
        .map(|(i, _)| format!("{:.3}", sharded[i] / coarse[i]));
    let json = format!(
        "{{\n  \"tasks\": {TASKS},\n  \"threads\": [1, 2, 4, 8],\n  \"coarse_tasks_per_sec\": [{}],\n  \"sharded_tasks_per_sec\": [{}],\n  \"speedup\": [{}]\n}}\n",
        row(&coarse),
        row(&sharded),
        speedups.collect::<Vec<_>>().join(", ")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_dispatch.json");
    std::fs::write(path, json).expect("write BENCH_dispatch.json");
    println!("wrote {path}");
}

criterion_group!(
    benches,
    bench_ready_queue,
    bench_event_queue,
    bench_ps_resource,
    bench_native_dispatch,
    bench_dispatch_throughput,
);
criterion_main!(benches);
