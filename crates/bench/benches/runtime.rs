//! Microbenchmarks of the runtime substrate: scheduler queues, the
//! symbolic tracker, the event queue, the processor-sharing resource, and
//! whole-engine task throughput.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use dcsim::{EventQueue, PsResource};
use parsec_rt::sched::ReadyQueue;
use parsec_rt::{NativeRuntime, SchedPolicy};
use ptg::{Activity, Dep, GraphCtx, Payload, PlainCtx, TaskClass, TaskGraph, TaskKey};
use std::hint::black_box;
use std::sync::Arc;

fn bench_ready_queue(c: &mut Criterion) {
    let n = 10_000u64;
    let mut g = c.benchmark_group("ready_queue");
    g.throughput(Throughput::Elements(n));
    g.bench_function("push_pop_10k_prio", |b| {
        b.iter(|| {
            let mut q = ReadyQueue::new(SchedPolicy::PriorityFifo);
            for i in 0..n {
                q.push(TaskKey::new(0, &[i as i64]), (i % 100) as i64);
            }
            while let Some(k) = q.pop() {
                black_box(k);
            }
        })
    });
    g.finish();
}

fn bench_event_queue(c: &mut Criterion) {
    let n = 10_000u64;
    let mut g = c.benchmark_group("event_queue");
    g.throughput(Throughput::Elements(n));
    g.bench_function("post_pop_10k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            for i in 0..n {
                q.post(i * 7 % 1000, i);
            }
            while let Some(e) = q.pop() {
                black_box(e);
            }
        })
    });
    g.finish();
}

fn bench_ps_resource(c: &mut Criterion) {
    let n = 1_000u64;
    let mut g = c.benchmark_group("ps_resource");
    g.throughput(Throughput::Elements(n));
    g.bench_function("submit_drain_1k", |b| {
        b.iter(|| {
            let mut ps = PsResource::new(8.0);
            for i in 0..n {
                ps.submit(i, 100.0 + i as f64);
            }
            while let Some((t, gen)) = ps.poll() {
                black_box(ps.tick(t, gen));
            }
        })
    });
    g.finish();
}

/// A wide fan-out graph of trivial tasks: measures pure dispatch overhead
/// of the native engine (tasks/second).
struct Trivial {
    n: i64,
}
impl TaskClass for Trivial {
    fn name(&self) -> &str {
        "T"
    }
    fn num_flows(&self) -> usize {
        1
    }
    fn roots(&self, _ctx: &dyn GraphCtx, out: &mut Vec<TaskKey>) {
        for i in 0..self.n {
            out.push(TaskKey::new(0, &[i]));
        }
    }
    fn num_inputs(&self, _k: TaskKey, _c: &dyn GraphCtx) -> usize {
        0
    }
    fn successors(&self, _k: TaskKey, _c: &dyn GraphCtx, _out: &mut Vec<Dep>) {}
    fn execute(
        &self,
        k: TaskKey,
        _c: &dyn GraphCtx,
        _i: &mut [Option<Payload>],
    ) -> Vec<Option<Payload>> {
        black_box(k.params[0]);
        vec![None]
    }
    fn activity(&self) -> Activity {
        Activity::Compute
    }
}

fn bench_native_dispatch(c: &mut Criterion) {
    let n = 5_000i64;
    let mut g = c.benchmark_group("native_engine");
    g.sample_size(20);
    g.throughput(Throughput::Elements(n as u64));
    g.bench_function("dispatch_5k_tasks_2_threads", |b| {
        b.iter(|| {
            let graph = TaskGraph::new(
                vec![Arc::new(Trivial { n })],
                Arc::new(PlainCtx { nodes: 1 }),
            );
            let rep = NativeRuntime::new(2).run(&graph);
            black_box(rep.tasks)
        })
    });
    g.finish();
}

criterion_group!(benches, bench_ready_queue, bench_event_queue, bench_ps_resource, bench_native_dispatch);
criterion_main!(benches);
