//! DSL benchmarks: parsing and symbolic graph queries (the operations a
//! PTG runtime performs on every task completion).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use ptg::dsl::DslBuilder;
use ptg::{expr, PlainCtx, TaskKey};
use std::hint::black_box;
use std::sync::Arc;

const FIG1: &str = r#"
    READ_A(L1, L2)
    L1 = 0 .. size_L1 - 1
    L2 = 0 .. size_L2 - 1
    WRITE A <- input_a(L1, L2) -> A GEMM(L1, L2)
    ; size_L1 - L1 + 5 * P
    BODY reader

    DFILL(L1)
    L1 = 0 .. size_L1 - 1
    WRITE C -> C GEMM(L1, 0)
    BODY dfill

    GEMM(L1, L2)
    L1 = 0 .. size_L1 - 1
    L2 = 0 .. size_L2 - 1
    READ A <- A READ_A(L1, L2)
    RW C <- (L2 == 0) ? C DFILL(L1)
         <- (L2 != 0) ? C GEMM(L1, L2 - 1)
         -> (L2 < size_L2 - 1) ? C GEMM(L1, L2 + 1)
         -> (L2 == size_L2 - 1) ? C SORT(L1)
    ; size_L1 - L1 + 1 * P
    BODY gemm

    SORT(L1)
    L1 = 0 .. size_L1 - 1
    READ C <- C GEMM(L1, size_L2 - 1)
    BODY sort
"#;

fn compile() -> ptg::TaskGraph {
    DslBuilder::new(FIG1)
        .global("size_L1", 64)
        .global("size_L2", 64)
        .compile(Arc::new(PlainCtx { nodes: 4 }))
        .unwrap()
}

fn bench_compile(c: &mut Criterion) {
    c.bench_function("dsl_compile_fig1", |b| {
        b.iter(|| black_box(compile().classes().len()))
    });
}

fn bench_successors(c: &mut Criterion) {
    let g = compile();
    let gemm = g.class_id("GEMM").unwrap();
    let ctx = g.ctx();
    let mut out = Vec::new();
    let n = 1_000u64;
    let mut grp = c.benchmark_group("dsl_symbolic");
    grp.throughput(Throughput::Elements(n));
    grp.bench_function("successors_1k", |b| {
        b.iter(|| {
            for i in 0..n as i64 {
                out.clear();
                let key = TaskKey::new(gemm, &[i % 64, (i * 7) % 64]);
                g.class_of(key).successors(key, ctx, &mut out);
                black_box(out.len());
            }
        })
    });
    grp.bench_function("priority_1k", |b| {
        b.iter(|| {
            for i in 0..n as i64 {
                let key = TaskKey::new(gemm, &[i % 64, (i * 7) % 64]);
                black_box(g.class_of(key).priority(key, ctx));
            }
        })
    });
    grp.finish();
}

fn bench_expr(c: &mut Criterion) {
    let src = "(L2 == 0) ? 100 : (size_L1 - L1 + 5 * P) * 2 - L2 % 7";
    c.bench_function("expr_parse", |b| {
        b.iter(|| black_box(expr::parse(src).unwrap()))
    });
    let e = expr::parse(src).unwrap();
    let mut env = expr::MapEnv::new();
    env.set("L1", 3)
        .set("L2", 9)
        .set("size_L1", 64)
        .set("P", 32);
    c.bench_function("expr_eval", |b| {
        b.iter(|| black_box(expr::eval(&e, &env).unwrap()))
    });
}

criterion_group!(benches, bench_compile, bench_successors, bench_expr);
criterion_main!(benches);
