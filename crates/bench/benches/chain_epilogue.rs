//! Fused chain-epilogue benchmark: the GEMM→REDUCE→SORT→WRITE data path.
//!
//! Measures the post-contraction epilogue of every chain in the workload
//! twice — as four separate task-shaped memory passes (the unfused v5
//! bodies) and as the fused single-pass writeback (`PermutedScatter` /
//! `ScaleAccumulate` epilogues plus `sort_4_merge`). Stages run
//! stage-major over per-chain buffers, the way the dataflow engine
//! executes them: between a chain's GEMM, REDUCE, SORT, and WRITE tasks
//! other chains' tasks run on the worker, so each stage re-reads its
//! tile from beyond the private caches — the "four round trips over the
//! same bytes" the fusion removes. The shared contraction FLOPs are
//! measured separately (a writeback-only GEMM pass) and subtracted, so
//! the reported speedup is on the epilogue itself. Alongside: analytic
//! bytes-moved on the chain data path and an end-to-end v5 vs fused-v5
//! native-engine run. Results go to `BENCH_epilogue.json` at the repo
//! root (under `target/` in quick mode, which also drops to tiny scale
//! so a smoke run never clobbers real measurements).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::{Duration, Instant};
use tensor_kernels::{
    daxpy, dfill, dgemm_packed_epilogue, dgemm_packed_with, epilogue_params, rel_diff, sort_4,
    sort_4_merge, sort_4_strided, Epilogue, GemmParams, SortSpec, Trans,
};

/// Best-of-`reps` wall time of `f` (with one extra warmup call).
fn best_of<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    let mut best = Duration::MAX;
    for r in 0..=reps {
        let t0 = Instant::now();
        f();
        let dt = t0.elapsed();
        if r > 0 && dt < best {
            best = dt;
        }
    }
    best.as_secs_f64()
}

fn seq(n: usize) -> Vec<f64> {
    (0..n).map(|i| (i as f64 * 0.7).sin()).collect()
}

/// Per-chain regions inside the flat operand / tile arrays.
struct Layout {
    a0: Vec<usize>,
    b0: Vec<usize>,
    c0: Vec<usize>,
    a_len: usize,
    b_len: usize,
    c_len: usize,
    max_mn: usize,
}

impl Layout {
    fn build(ins: &tce::Inspection) -> Self {
        let mut l = Layout {
            a0: Vec::new(),
            b0: Vec::new(),
            c0: Vec::new(),
            a_len: 0,
            b_len: 0,
            c_len: 0,
            max_mn: 0,
        };
        for chain in &ins.chains {
            let g = chain.gemms.last().expect("chain has GEMMs");
            l.a0.push(l.a_len);
            l.b0.push(l.b_len);
            l.c0.push(l.c_len);
            l.a_len += chain.m * g.k;
            l.b_len += g.k * chain.n;
            l.c_len += chain.m * chain.n;
            l.max_mn = l.max_mn.max(chain.m * chain.n);
        }
        l
    }
}

/// Flat per-chain buffers shared by both paths, plus packing scratch.
struct Bufs {
    a: Vec<f64>,
    b: Vec<f64>,
    x: Vec<f64>,
    c: Vec<f64>,
    tmp: Vec<f64>,
    merged: Vec<f64>,
    ap: Vec<f64>,
    bp: Vec<f64>,
}

/// Stage 1 only: every chain's final contraction with a plain
/// contiguous writeback. This is the FLOP cost common to both paths;
/// subtracting it isolates the epilogue.
fn run_gemm_only(ins: &tce::Inspection, l: &Layout, bufs: &mut Bufs, params: &GemmParams) {
    for (i, chain) in ins.chains.iter().enumerate() {
        let g = chain.gemms.last().unwrap();
        let (m, n, k) = (chain.m, chain.n, g.k);
        dgemm_packed_with(
            params,
            Trans::T,
            g.tb,
            m,
            n,
            k,
            1.0,
            black_box(&bufs.a[l.a0[i]..l.a0[i] + m * k]),
            black_box(&bufs.b[l.b0[i]..l.b0[i] + k * n]),
            0.0,
            &mut bufs.c[l.c0[i]..l.c0[i] + m * n],
            &mut bufs.ap,
            &mut bufs.bp,
        );
    }
}

/// Unfused v5 epilogue, stage-major: GEMMs write C, the reduce roots
/// re-read it for the daxpy, the serial SORT stages each branch through
/// a scratch tile, and the accumulate re-reads the merged result.
fn run_unfused(
    ins: &tce::Inspection,
    l: &Layout,
    bufs: &mut Bufs,
    ga: &mut [f64],
    params: &GemmParams,
) {
    for (i, chain) in ins.chains.iter().enumerate() {
        let g = chain.gemms.last().unwrap();
        let (m, n, k) = (chain.m, chain.n, g.k);
        // The unfused GEMM body checks out a zeroed C and accumulates
        // into it (the generic segment body); mirror both passes.
        dfill(&mut bufs.c[l.c0[i]..l.c0[i] + m * n], 0.0);
        dgemm_packed_with(
            params,
            Trans::T,
            g.tb,
            m,
            n,
            k,
            1.0,
            black_box(&bufs.a[l.a0[i]..l.a0[i] + m * k]),
            black_box(&bufs.b[l.b0[i]..l.b0[i] + k * n]),
            1.0,
            &mut bufs.c[l.c0[i]..l.c0[i] + m * n],
            &mut bufs.ap,
            &mut bufs.bp,
        );
    }
    for (i, chain) in ins.chains.iter().enumerate() {
        if chain.gemms.len() > 1 {
            let mn = chain.m * chain.n;
            daxpy(
                1.0,
                black_box(&bufs.x[l.c0[i]..l.c0[i] + mn]),
                &mut bufs.c[l.c0[i]..l.c0[i] + mn],
            );
        }
    }
    for (i, chain) in ins.chains.iter().enumerate() {
        let mn = chain.m * chain.n;
        let merged = &mut bufs.merged[l.c0[i]..l.c0[i] + mn];
        dfill(merged, 0.0);
        for s in &chain.sorts {
            sort_4(
                &bufs.c[l.c0[i]..l.c0[i] + mn],
                &mut bufs.tmp[..mn],
                chain.cdims,
                s.perm,
                s.factor,
            );
            daxpy(
                1.0,
                &bufs.tmp[..mn],
                &mut bufs.merged[l.c0[i]..l.c0[i] + mn],
            );
        }
    }
    for (i, chain) in ins.chains.iter().enumerate() {
        let mn = chain.m * chain.n;
        daxpy(
            1.0,
            &bufs.merged[l.c0[i]..l.c0[i] + mn],
            &mut ga[l.c0[i]..l.c0[i] + mn],
        );
    }
}

/// The same epilogues fused: single-branch chains scatter the sorted
/// tile straight out of the GEMM writeback (C is never materialized
/// unsorted), multi-branch chains fold the reduce-root daxpy into the
/// writeback and merge all branches in one pass over C.
fn run_fused(
    ins: &tce::Inspection,
    l: &Layout,
    bufs: &mut Bufs,
    ga: &mut [f64],
    params: &GemmParams,
) {
    for (i, chain) in ins.chains.iter().enumerate() {
        let g = chain.gemms.last().unwrap();
        let (m, n, k) = (chain.m, chain.n, g.k);
        let mn = m * n;
        let x = (chain.gemms.len() > 1).then_some(&bufs.x[l.c0[i]..l.c0[i] + mn]);
        let (epi, out) = if chain.sorts.len() == 1 {
            let s = &chain.sorts[0];
            (
                Epilogue::PermutedScatter {
                    dims: chain.cdims,
                    perm: s.perm,
                    factor: s.factor,
                    gamma: 1.0,
                    x,
                },
                &mut bufs.merged[l.c0[i]..l.c0[i] + mn],
            )
        } else {
            (
                match x {
                    Some(x) => Epilogue::ScaleAccumulate {
                        beta: 0.0,
                        gamma: 1.0,
                        x,
                    },
                    None => Epilogue::Overwrite { beta: 0.0 },
                },
                &mut bufs.c[l.c0[i]..l.c0[i] + mn],
            )
        };
        let ep = epilogue_params(params, &epi, k);
        dgemm_packed_epilogue(
            &ep,
            Trans::T,
            g.tb,
            m,
            n,
            k,
            1.0,
            black_box(&bufs.a[l.a0[i]..l.a0[i] + m * k]),
            black_box(&bufs.b[l.b0[i]..l.b0[i] + k * n]),
            epi,
            out,
            &mut bufs.ap,
            &mut bufs.bp,
        );
    }
    for (i, chain) in ins.chains.iter().enumerate() {
        if chain.sorts.len() == 1 {
            continue;
        }
        let mn = chain.m * chain.n;
        let mut specs = [SortSpec {
            perm: [0, 1, 2, 3],
            factor: 0.0,
        }; 4];
        for (d, s) in specs.iter_mut().zip(&chain.sorts) {
            *d = SortSpec {
                perm: s.perm,
                factor: s.factor,
            };
        }
        sort_4_merge(
            &bufs.c[l.c0[i]..l.c0[i] + mn],
            &mut bufs.merged[l.c0[i]..l.c0[i] + mn],
            chain.cdims,
            &specs[..chain.sorts.len()],
        );
    }
    for (i, chain) in ins.chains.iter().enumerate() {
        let mn = chain.m * chain.n;
        daxpy(
            1.0,
            &bufs.merged[l.c0[i]..l.c0[i] + mn],
            &mut ga[l.c0[i]..l.c0[i] + mn],
        );
    }
}

/// Analytic bytes on the chain data path — the stages the fusion
/// collapses: the final C writeback, the reduce root's daxpy over it,
/// the SORT passes, and the GA accumulate (the ISSUE's "four round
/// trips over the same bytes per chain"). The reduce tree below the
/// root merges leaf partials and is identical either way (one fewer
/// leaf when fused), so it is not part of this path.
fn chain_data_path_bytes(ins: &tce::Inspection, fused: bool) -> u64 {
    let mut total = 0u64;
    for chain in &ins.chains {
        let b = chain.c_bytes();
        let nb = chain.sorts.len() as u64;
        let has_root = chain.gemms.len() > 1;
        let w = |perm| {
            if sort_4_strided(chain.cdims, perm) {
                ccsd::SORT_STRIDE_FACTOR
            } else {
                1
            }
        };
        total += if fused {
            // Writeback + addend read in one pass, one-pass merge for
            // multi-branch chains only, then the accumulate.
            let gemm = b + if has_root { b } else { 0 };
            let sort = if nb == 1 { 0 } else { b + 2 * nb * b };
            gemm + sort + (1 + ccsd::ACC_RMW_FACTOR) * b
        } else {
            // Zero-filled checkout + read-modify-write C writeback (the
            // generic segment body); root daxpy re-reads C (read addend
            // + RMW C); staged serial sort (stride penalty per branch +
            // three-pass daxpy merge); accumulate.
            let gemm = 3 * b;
            let root = if has_root { 3 * b } else { 0 };
            let sort = b + chain.sorts.iter().map(|s| b * w(s.perm)).sum::<u64>() + 3 * nb * b;
            gemm + root + sort + (1 + ccsd::ACC_RMW_FACTOR) * b
        };
    }
    total
}

/// The ISSUE acceptance measurement: per-chain epilogue composite
/// (fused vs unfused wall time and analytic bytes) over the whole
/// workload, plus an end-to-end v5 vs fused-v5 native run.
fn bench_chain_epilogue(_c: &mut Criterion) {
    let quick = criterion::quick_mode();
    let (scale_name, reps, threads) = if quick {
        ("tiny", 1, 2)
    } else {
        ("medium", 7, 4)
    };
    let space = tce::TileSpace::build(&match scale_name {
        "tiny" => tce::scale::tiny(),
        _ => tce::scale::medium(),
    });
    let (ins, ws) = ccsd::verify::prepare(&space, 2);
    let l = Layout::build(&ins);

    // --- shared scratch; packing buffers sized for the widened-kc
    // scatter epilogue as well as the stock parameters.
    let params = GemmParams::default();
    let (mut max_ap, mut max_bp) = (0usize, 0);
    let (mut single, mut multi) = (0usize, 0usize);
    for chain in &ins.chains {
        let g = chain.gemms.last().unwrap();
        let (m, n, k) = (chain.m, chain.n, g.k);
        let wide = epilogue_params(
            &params,
            &Epilogue::PermutedScatter {
                dims: chain.cdims,
                perm: [0, 1, 2, 3],
                factor: 1.0,
                gamma: 1.0,
                x: None,
            },
            k,
        );
        max_ap = max_ap
            .max(wide.packed_a_len(m, k))
            .max(params.packed_a_len(m, k));
        max_bp = max_bp
            .max(wide.packed_b_len(n, k))
            .max(params.packed_b_len(n, k));
        if chain.sorts.len() == 1 {
            single += 1;
        } else {
            multi += 1;
        }
    }
    let mut bufs = Bufs {
        a: seq(l.a_len),
        b: seq(l.b_len),
        x: seq(l.c_len),
        c: vec![0.0; l.c_len],
        tmp: vec![0.0; l.max_mn],
        merged: vec![0.0; l.c_len],
        ap: vec![0.0; max_ap],
        bp: vec![0.0; max_bp],
    };
    println!(
        "bench chain_epilogue/workload  scale {scale_name}   {} chains ({single} single-branch, {multi} multi-branch)   tiles {:.1} MB",
        ins.chains.len(),
        l.c_len as f64 * 8.0 / 1e6,
    );

    // --- numerical agreement of the two composites (merge regroups the
    // branch additions, so exact equality is not expected).
    let mut ga_u = vec![0.0; l.c_len];
    let mut ga_f = vec![0.0; l.c_len];
    run_unfused(&ins, &l, &mut bufs, &mut ga_u, &params);
    run_fused(&ins, &l, &mut bufs, &mut ga_f, &params);
    let agree = ga_u
        .iter()
        .zip(&ga_f)
        .map(|(&u, &f)| rel_diff(u, f))
        .fold(0.0f64, f64::max);
    assert!(agree < 1e-12, "fused epilogue diverged: rel {agree:e}");
    drop(ga_u);
    drop(ga_f);

    // --- wall time: both full composites plus the writeback-only GEMM
    // pass whose FLOPs both paths share; the difference is the epilogue.
    let mut ga = vec![0.0; l.c_len];
    let t_unfused = best_of(reps, || run_unfused(&ins, &l, &mut bufs, &mut ga, &params));
    let t_fused = best_of(reps, || run_fused(&ins, &l, &mut bufs, &mut ga, &params));
    let t_gemm = best_of(reps, || run_gemm_only(&ins, &l, &mut bufs, &params));
    let epi_u = t_unfused - t_gemm;
    let epi_f = (t_fused - t_gemm).max(1e-9);
    let speedup = epi_u / epi_f;
    println!(
        "bench chain_epilogue/composite  unfused {:9.3} ms   fused {:9.3} ms   gemm-only {:9.3} ms",
        t_unfused * 1e3,
        t_fused * 1e3,
        t_gemm * 1e3
    );
    println!(
        "bench chain_epilogue/epilogue  unfused {:9.3} ms   fused {:9.3} ms   {speedup:.2}x",
        epi_u * 1e3,
        epi_f * 1e3
    );

    // --- analytic bytes on the chain data path.
    let bytes_u = chain_data_path_bytes(&ins, false);
    let bytes_f = chain_data_path_bytes(&ins, true);
    let bytes_ratio = bytes_u as f64 / bytes_f as f64;
    println!("bench chain_epilogue/bytes  unfused {bytes_u}   fused {bytes_f}   {bytes_ratio:.2}x");

    // --- end-to-end: v5 vs fused v5 on the native engine, energies
    // checked against each other (both are reference-checked in tests).
    let run = |cfg| {
        let t0 = Instant::now();
        let e = ccsd::verify::variant_energy_native(&ins, &ws, cfg, threads);
        (t0.elapsed().as_secs_f64(), e)
    };
    let (mut tv5, mut ev5) = (f64::MAX, 0.0);
    let (mut tv5f, mut ev5f) = (f64::MAX, 0.0);
    for _ in 0..reps.min(3) {
        let (t, e) = run(ccsd::VariantCfg::v5());
        if t < tv5 {
            tv5 = t;
        }
        ev5 = e;
        let (t, e) = run(ccsd::VariantCfg::v5().fused());
        if t < tv5f {
            tv5f = t;
        }
        ev5f = e;
    }
    let e_rel = rel_diff(ev5, ev5f);
    assert!(e_rel < 1e-12, "v5f energy drifted: {ev5} vs {ev5f}");
    println!(
        "bench chain_epilogue/end_to_end_v5  unfused {:9.3} ms   fused {:9.3} ms   {:.2}x   energy rel {e_rel:.1e}",
        tv5 * 1e3,
        tv5f * 1e3,
        tv5 / tv5f
    );

    let json = format!(
        "{{\n  \"quick\": {quick},\n  \"scale\": \"{scale_name}\",\n  \"chains\": {},\n  \"single_branch_chains\": {single},\n  \"multi_branch_chains\": {multi},\n  \"epilogue\": {{\n    \"composite_unfused_s\": {t_unfused:.6},\n    \"composite_fused_s\": {t_fused:.6},\n    \"gemm_only_s\": {t_gemm:.6},\n    \"unfused_s\": {epi_u:.6},\n    \"fused_s\": {epi_f:.6},\n    \"speedup\": {speedup:.3}\n  }},\n  \"data_path_bytes\": {{\n    \"unfused\": {bytes_u},\n    \"fused\": {bytes_f},\n    \"ratio\": {bytes_ratio:.3}\n  }},\n  \"end_to_end_v5\": {{\n    \"threads\": {threads},\n    \"unfused_s\": {tv5:.6},\n    \"fused_s\": {tv5f:.6},\n    \"speedup\": {:.3},\n    \"energy_rel_diff\": {e_rel:.3e}\n  }}\n}}\n",
        ins.chains.len(),
        tv5 / tv5f,
    );
    let path = if quick {
        concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../target/BENCH_epilogue.json"
        )
    } else {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_epilogue.json")
    };
    std::fs::write(path, json).expect("write BENCH_epilogue.json");
    println!("wrote {path}");
}

criterion_group!(benches, bench_chain_epilogue);
criterion_main!(benches);
