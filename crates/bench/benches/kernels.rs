//! Microbenchmarks of the computational kernels (the task bodies).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use std::time::{Duration, Instant};
use tensor_kernels::{
    daxpy, dgemm, dgemm_blocked, dgemm_naive, dgemm_packed_with, sort_4, sort_4_naive,
    sort_4_tiled, GemmParams, Trans,
};

fn seq(n: usize) -> Vec<f64> {
    (0..n).map(|i| (i as f64).sin()).collect()
}

fn bench_dgemm(c: &mut Criterion) {
    let mut g = c.benchmark_group("dgemm_tn");
    for &d in &[16usize, 32] {
        let (m, n, k) = (d * d / 4, d * d / 4, d * d / 4);
        let a = seq(m * k);
        let b = seq(k * n);
        let mut cc = seq(m * n);
        g.throughput(Throughput::Elements(2 * (m * n * k) as u64));
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("{m}x{n}x{k}")),
            &d,
            |bch, _| {
                bch.iter(|| {
                    dgemm(
                        Trans::T,
                        Trans::N,
                        m,
                        n,
                        k,
                        1.0,
                        black_box(&a),
                        black_box(&b),
                        1.0,
                        &mut cc,
                    )
                })
            },
        );
    }
    g.finish();
}

/// The ISSUE acceptance measurement: 4x4-blocked `T x N` kernel vs the
/// textbook naive loop at 64x64x64.
fn bench_dgemm_blocked_vs_naive(c: &mut Criterion) {
    let mut g = c.benchmark_group("dgemm_tn_64");
    let (m, n, k) = (64usize, 64, 64);
    let a = seq(m * k);
    let b = seq(k * n);
    let mut cc = seq(m * n);
    g.throughput(Throughput::Elements(2 * (m * n * k) as u64));
    g.bench_function("blocked", |bch| {
        bch.iter(|| {
            dgemm(
                Trans::T,
                Trans::N,
                m,
                n,
                k,
                1.0,
                black_box(&a),
                black_box(&b),
                1.0,
                &mut cc,
            )
        })
    });
    g.bench_function("naive", |bch| {
        bch.iter(|| {
            dgemm_naive(
                Trans::T,
                Trans::N,
                m,
                n,
                k,
                1.0,
                black_box(&a),
                black_box(&b),
                1.0,
                &mut cc,
            )
        })
    });
    g.finish();
}

fn bench_sort4(c: &mut Criterion) {
    let mut g = c.benchmark_group("sort_4");
    let dims = [12usize, 12, 12, 12];
    let n: usize = dims.iter().product();
    let src = seq(n);
    let mut dst = vec![0.0; n];
    for perm in [[0usize, 1, 2, 3], [1, 0, 2, 3], [3, 2, 1, 0]] {
        g.throughput(Throughput::Bytes(16 * n as u64));
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("{perm:?}")),
            &perm,
            |bch, &p| bch.iter(|| sort_4(black_box(&src), &mut dst, dims, p, -1.0)),
        );
    }
    g.finish();
}

fn bench_daxpy(c: &mut Criterion) {
    let x = seq(1 << 16);
    let mut y = seq(1 << 16);
    c.bench_function("daxpy_64k", |b| {
        b.iter(|| daxpy(1.0001, black_box(&x), &mut y))
    });
}

/// Best-of-`reps` wall time of `f` (with one extra warmup call).
fn best_of<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    let mut best = Duration::MAX;
    for r in 0..=reps {
        let t0 = Instant::now();
        f();
        let dt = t0.elapsed();
        if r > 0 && dt < best {
            best = dt;
        }
    }
    best.as_secs_f64()
}

fn row(v: &[f64]) -> String {
    v.iter()
        .map(|x| format!("{x:.3}"))
        .collect::<Vec<_>>()
        .join(", ")
}

/// The kernel matrix behind the data-path optimization work: naive vs
/// blocked vs packed dgemm GFLOP/s at 64/128/256 cubed, the linear vs
/// cache-tiled `sort_4` remap in MB/s, and the tile pool's steady-state
/// counters over a pooled v5 run. Printed, and written to
/// `BENCH_kernels.json` at the repo root (under `target/` in quick mode,
/// so a smoke run never clobbers real measurements).
fn bench_kernel_matrix(_c: &mut Criterion) {
    let quick = criterion::quick_mode();
    let reps = if quick { 1 } else { 5 };

    // --- dgemm: naive / blocked / packed at the chain GEMM shape (TxN).
    const SIZES: [usize; 3] = [64, 128, 256];
    let params = GemmParams::default();
    let mut naive_gf = Vec::new();
    let mut blocked_gf = Vec::new();
    let mut packed_gf = Vec::new();
    for &d in &SIZES {
        let (m, n, k) = (d, d, d);
        let a = seq(m * k);
        let b = seq(k * n);
        let mut cc = seq(m * n);
        let mut ap = vec![0.0; params.packed_a_len(m, k)];
        let mut bp = vec![0.0; params.packed_b_len(n, k)];
        let flops = 2.0 * (m * n * k) as f64;
        let tn = best_of(reps, || {
            dgemm_naive(
                Trans::T,
                Trans::N,
                m,
                n,
                k,
                1.0,
                black_box(&a),
                black_box(&b),
                1.0,
                &mut cc,
            )
        });
        let tb = best_of(reps, || {
            dgemm_blocked(
                Trans::T,
                Trans::N,
                m,
                n,
                k,
                1.0,
                black_box(&a),
                black_box(&b),
                1.0,
                &mut cc,
            )
        });
        let tp = best_of(reps, || {
            dgemm_packed_with(
                &params,
                Trans::T,
                Trans::N,
                m,
                n,
                k,
                1.0,
                black_box(&a),
                black_box(&b),
                1.0,
                &mut cc,
                &mut ap,
                &mut bp,
            )
        });
        naive_gf.push(flops / tn / 1e9);
        blocked_gf.push(flops / tb / 1e9);
        packed_gf.push(flops / tp / 1e9);
        println!(
            "bench kernel_matrix/dgemm_{d}  naive {:6.2} GF/s   blocked {:6.2} GF/s   packed {:6.2} GF/s   packed/blocked {:.2}x",
            flops / tn / 1e9,
            flops / tb / 1e9,
            flops / tp / 1e9,
            tb / tp
        );
    }

    // --- sort_4: linear walk vs cache-tiled remap on a fully strided
    // permutation (both read n and write n doubles per pass).
    let dims = [24usize, 24, 24, 24];
    let perm = [3usize, 2, 1, 0];
    let n: usize = dims.iter().product();
    let src = seq(n);
    let mut dst = vec![0.0; n];
    let bytes = 16.0 * n as f64;
    let t_naive = best_of(reps, || {
        sort_4_naive(black_box(&src), &mut dst, dims, perm, -1.0)
    });
    let t_tiled = best_of(reps, || {
        sort_4_tiled(black_box(&src), &mut dst, dims, perm, -1.0)
    });
    let naive_mbs = bytes / t_naive / 1e6;
    let tiled_mbs = bytes / t_tiled / 1e6;
    println!(
        "bench kernel_matrix/sort4_{perm:?}  naive {naive_mbs:8.0} MB/s   tiled {tiled_mbs:8.0} MB/s   {:.2}x",
        t_naive / t_tiled
    );

    // --- tile pool: steady-state counters of a pooled v5 chain run
    // (warm-up run first, then the measured run on the warmed pool).
    let space = tce::TileSpace::build(&tce::scale::tiny());
    let (ins, ws) = ccsd::verify::prepare(&space, 3);
    let pool = std::sync::Arc::new(parsec_rt::TilePool::new(8));
    ccsd::verify::variant_energy_native_pooled(
        &ins,
        &ws,
        ccsd::VariantCfg::v5(),
        1,
        parsec_rt::SchedPolicy::PriorityFifo,
        pool.clone(),
    );
    let warm = pool.stats();
    ccsd::verify::variant_energy_native_pooled(
        &ins,
        &ws,
        ccsd::VariantCfg::v5(),
        1,
        parsec_rt::SchedPolicy::PriorityFifo,
        pool.clone(),
    );
    let steady = pool.stats();
    let steady_checkouts = (steady.hits + steady.misses) - (warm.hits + warm.misses);
    let steady_misses = steady.misses - warm.misses;
    println!(
        "bench kernel_matrix/pool_v5  warmup misses {}   steady checkouts {steady_checkouts}   steady misses {steady_misses}   cow clones {}",
        warm.misses, steady.cow_clones
    );

    let json = format!(
        "{{\n  \"quick\": {quick},\n  \"dgemm_tn\": {{\n    \"sizes\": [64, 128, 256],\n    \"naive_gflops\": [{}],\n    \"blocked_gflops\": [{}],\n    \"packed_gflops\": [{}],\n    \"packed_over_blocked\": [{}]\n  }},\n  \"sort4\": {{\n    \"dims\": [24, 24, 24, 24],\n    \"perm\": [3, 2, 1, 0],\n    \"naive_mb_per_s\": {naive_mbs:.0},\n    \"tiled_mb_per_s\": {tiled_mbs:.0},\n    \"tiled_over_naive\": {:.3}\n  }},\n  \"pool_v5_tiny\": {{\n    \"warmup_misses\": {},\n    \"steady_checkouts\": {steady_checkouts},\n    \"steady_misses\": {steady_misses},\n    \"cow_clones\": {},\n    \"bytes_allocated\": {}\n  }}\n}}\n",
        row(&naive_gf),
        row(&blocked_gf),
        row(&packed_gf),
        row(
            &SIZES
                .iter()
                .enumerate()
                .map(|(i, _)| packed_gf[i] / blocked_gf[i])
                .collect::<Vec<_>>()
        ),
        t_naive / t_tiled,
        warm.misses,
        steady.cow_clones,
        steady.bytes_allocated,
    );
    let path = if quick {
        concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../target/BENCH_kernels.json"
        )
    } else {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_kernels.json")
    };
    std::fs::write(path, json).expect("write BENCH_kernels.json");
    println!("wrote {path}");
}

criterion_group!(
    benches,
    bench_dgemm,
    bench_dgemm_blocked_vs_naive,
    bench_sort4,
    bench_daxpy,
    bench_kernel_matrix
);
criterion_main!(benches);
