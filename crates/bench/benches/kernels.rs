//! Microbenchmarks of the computational kernels (the task bodies).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use tensor_kernels::{daxpy, dgemm, dgemm_naive, sort_4, Trans};

fn seq(n: usize) -> Vec<f64> {
    (0..n).map(|i| (i as f64).sin()).collect()
}

fn bench_dgemm(c: &mut Criterion) {
    let mut g = c.benchmark_group("dgemm_tn");
    for &d in &[16usize, 32] {
        let (m, n, k) = (d * d / 4, d * d / 4, d * d / 4);
        let a = seq(m * k);
        let b = seq(k * n);
        let mut cc = seq(m * n);
        g.throughput(Throughput::Elements(2 * (m * n * k) as u64));
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("{m}x{n}x{k}")),
            &d,
            |bch, _| {
                bch.iter(|| {
                    dgemm(
                        Trans::T,
                        Trans::N,
                        m,
                        n,
                        k,
                        1.0,
                        black_box(&a),
                        black_box(&b),
                        1.0,
                        &mut cc,
                    )
                })
            },
        );
    }
    g.finish();
}

/// The ISSUE acceptance measurement: 4x4-blocked `T x N` kernel vs the
/// textbook naive loop at 64x64x64.
fn bench_dgemm_blocked_vs_naive(c: &mut Criterion) {
    let mut g = c.benchmark_group("dgemm_tn_64");
    let (m, n, k) = (64usize, 64, 64);
    let a = seq(m * k);
    let b = seq(k * n);
    let mut cc = seq(m * n);
    g.throughput(Throughput::Elements(2 * (m * n * k) as u64));
    g.bench_function("blocked", |bch| {
        bch.iter(|| {
            dgemm(
                Trans::T,
                Trans::N,
                m,
                n,
                k,
                1.0,
                black_box(&a),
                black_box(&b),
                1.0,
                &mut cc,
            )
        })
    });
    g.bench_function("naive", |bch| {
        bch.iter(|| {
            dgemm_naive(
                Trans::T,
                Trans::N,
                m,
                n,
                k,
                1.0,
                black_box(&a),
                black_box(&b),
                1.0,
                &mut cc,
            )
        })
    });
    g.finish();
}

fn bench_sort4(c: &mut Criterion) {
    let mut g = c.benchmark_group("sort_4");
    let dims = [12usize, 12, 12, 12];
    let n: usize = dims.iter().product();
    let src = seq(n);
    let mut dst = vec![0.0; n];
    for perm in [[0usize, 1, 2, 3], [1, 0, 2, 3], [3, 2, 1, 0]] {
        g.throughput(Throughput::Bytes(16 * n as u64));
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("{perm:?}")),
            &perm,
            |bch, &p| bch.iter(|| sort_4(black_box(&src), &mut dst, dims, p, -1.0)),
        );
    }
    g.finish();
}

fn bench_daxpy(c: &mut Criterion) {
    let x = seq(1 << 16);
    let mut y = seq(1 << 16);
    c.bench_function("daxpy_64k", |b| {
        b.iter(|| daxpy(1.0001, black_box(&x), &mut y))
    });
}

criterion_group!(
    benches,
    bench_dgemm,
    bench_dgemm_blocked_vs_naive,
    bench_sort4,
    bench_daxpy
);
criterion_main!(benches);
