//! Property tests: kernel implementations vs naive oracles.

use proptest::prelude::*;
use tensor_kernels::{
    dgemm, dgemm_naive, dgemm_packed_with, invert_perm, sort_4, sort_4_naive, sort_4_tiled,
    GemmParams, Perm4, Trans,
};

fn trans() -> impl Strategy<Value = Trans> {
    prop_oneof![Just(Trans::N), Just(Trans::T)]
}

fn perm4() -> impl Strategy<Value = Perm4> {
    Just(()).prop_perturb(|_, mut rng| {
        let mut p = [0usize, 1, 2, 3];
        // Fisher-Yates with the proptest rng.
        for i in (1..4).rev() {
            let j = (rng.next_u32() as usize) % (i + 1);
            p.swap(i, j);
        }
        p
    })
}

proptest! {
    /// Blocked dgemm agrees with the naive oracle for all flag combinations.
    #[test]
    fn dgemm_matches_naive(
        ta in trans(),
        tb in trans(),
        m in 0usize..12,
        n in 0usize..12,
        k in 0usize..12,
        alpha in -2.0f64..2.0,
        beta in -2.0f64..2.0,
        seed in 0u64..1000,
    ) {
        let gen = |len: usize, salt: u64| -> Vec<f64> {
            (0..len).map(|i| {
                let x = (i as u64).wrapping_mul(6364136223846793005).wrapping_add(seed ^ salt);
                ((x >> 11) as f64 / (1u64 << 53) as f64) - 0.5
            }).collect()
        };
        let a = gen(m * k, 1);
        let b = gen(k * n, 2);
        let c0 = gen(m * n, 3);
        let mut c1 = c0.clone();
        let mut c2 = c0;
        dgemm(ta, tb, m, n, k, alpha, &a, &b, beta, &mut c1);
        dgemm_naive(ta, tb, m, n, k, alpha, &a, &b, beta, &mut c2);
        for (x, y) in c1.iter().zip(&c2) {
            prop_assert!((x - y).abs() < 1e-10, "{x} vs {y}");
        }
    }

    /// The 4x4-blocked kernel has edge paths wherever a dimension is not
    /// a multiple of the block: exercise them with odd and prime sizes
    /// (1x1, 1xk, prime dims), all four transpose combinations per case.
    #[test]
    fn dgemm_odd_sizes_all_transposes(
        mi in 0usize..8,
        ni in 0usize..8,
        ki in 0usize..8,
        alpha in prop_oneof![Just(1.0f64), Just(-0.5), Just(2.0)],
        beta in prop_oneof![Just(0.0f64), Just(1.0), Just(-1.5)],
        seed in 0u64..1000,
    ) {
        // 1 and the primes straddling the 4-wide block boundary.
        const ODD: [usize; 8] = [1, 2, 3, 5, 7, 11, 13, 17];
        let (m, n, k) = (ODD[mi], ODD[ni], ODD[ki]);
        let gen = |len: usize, salt: u64| -> Vec<f64> {
            (0..len).map(|i| {
                let x = (i as u64).wrapping_mul(6364136223846793005).wrapping_add(seed ^ salt);
                ((x >> 11) as f64 / (1u64 << 53) as f64) - 0.5
            }).collect()
        };
        let a = gen(m * k, 11);
        let b = gen(k * n, 12);
        let c0 = gen(m * n, 13);
        for ta in [Trans::N, Trans::T] {
            for tb in [Trans::N, Trans::T] {
                let mut c1 = c0.clone();
                let mut c2 = c0.clone();
                dgemm(ta, tb, m, n, k, alpha, &a, &b, beta, &mut c1);
                dgemm_naive(ta, tb, m, n, k, alpha, &a, &b, beta, &mut c2);
                for (x, y) in c1.iter().zip(&c2) {
                    prop_assert!(
                        (x - y).abs() < 1e-10,
                        "{ta:?}{tb:?} {m}x{n}x{k}: {x} vs {y}"
                    );
                }
            }
        }
    }

    /// sort_4 is a bijection: applying a permutation then its inverse (with
    /// reciprocal factors) restores the input exactly.
    #[test]
    fn sort4_roundtrip(
        p in perm4(),
        d0 in 1usize..5,
        d1 in 1usize..5,
        d2 in 1usize..5,
        d3 in 1usize..5,
        factor in prop_oneof![Just(1.0f64), Just(-1.0), Just(2.0), Just(-0.5)],
    ) {
        let dims = [d0, d1, d2, d3];
        let n: usize = dims.iter().product();
        let src: Vec<f64> = (0..n).map(|i| i as f64 + 0.5).collect();
        let odims = [dims[p[0]], dims[p[1]], dims[p[2]], dims[p[3]]];
        let mut mid = vec![0.0; n];
        let mut back = vec![0.0; n];
        sort_4(&src, &mut mid, dims, p, factor);
        sort_4(&mid, &mut back, odims, invert_perm(&p), 1.0 / factor);
        for (x, y) in src.iter().zip(&back) {
            prop_assert!((x - y).abs() < 1e-12);
        }
    }

    /// sort_4 preserves the multiset of |values| (scaled).
    #[test]
    fn sort4_preserves_content(
        p in perm4(),
        d0 in 1usize..5,
        d1 in 1usize..5,
        d2 in 1usize..5,
        d3 in 1usize..5,
    ) {
        let dims = [d0, d1, d2, d3];
        let n: usize = dims.iter().product();
        let src: Vec<f64> = (0..n).map(|i| (i * i) as f64).collect();
        let mut dst = vec![0.0; n];
        sort_4(&src, &mut dst, dims, p, 1.0);
        let mut a = src.clone();
        let mut b = dst.clone();
        a.sort_by(|x, y| x.partial_cmp(y).unwrap());
        b.sort_by(|x, y| x.partial_cmp(y).unwrap());
        prop_assert_eq!(a, b);
    }

    /// The packed engine agrees with the naive oracle to 1e-12 for all
    /// four transpose combinations, degenerate alpha/beta, and odd and
    /// prime sizes straddling the MC/KC/NC block edges. Shrunk block
    /// parameters (mc=16, kc=8, nc=12) put every size in the list on
    /// both sides of some cache-block boundary, and sizes that are not
    /// multiples of MR=8 / NR=6 exercise the zero-padded micropanels and
    /// the clipped writeback.
    #[test]
    fn packed_dgemm_matches_naive_all_transposes(
        mi in 0usize..8,
        ni in 0usize..8,
        ki in 0usize..8,
        alpha in prop_oneof![Just(0.0f64), Just(1.0), Just(-0.5), Just(2.0)],
        beta in prop_oneof![Just(0.0f64), Just(1.0), Just(-0.5), Just(2.0)],
        seed in 0u64..1000,
    ) {
        const ODD: [usize; 8] = [1, 5, 7, 9, 13, 17, 23, 31];
        let params = GemmParams { mc: 16, kc: 8, nc: 12 };
        let (m, n, k) = (ODD[mi], ODD[ni], ODD[ki]);
        let gen = |len: usize, salt: u64| -> Vec<f64> {
            (0..len).map(|i| {
                let x = (i as u64).wrapping_mul(6364136223846793005).wrapping_add(seed ^ salt);
                ((x >> 11) as f64 / (1u64 << 53) as f64) - 0.5
            }).collect()
        };
        let a = gen(m * k, 21);
        let b = gen(k * n, 22);
        let c0 = gen(m * n, 23);
        let mut ap = vec![0.0; params.packed_a_len(m, k)];
        let mut bp = vec![0.0; params.packed_b_len(n, k)];
        for ta in [Trans::N, Trans::T] {
            for tb in [Trans::N, Trans::T] {
                let mut c1 = c0.clone();
                let mut c2 = c0.clone();
                dgemm_packed_with(
                    &params, ta, tb, m, n, k, alpha, &a, &b, beta, &mut c1, &mut ap, &mut bp,
                );
                dgemm_naive(ta, tb, m, n, k, alpha, &a, &b, beta, &mut c2);
                for (x, y) in c1.iter().zip(&c2) {
                    prop_assert!(
                        (x - y).abs() < 1e-12,
                        "{ta:?}{tb:?} {m}x{n}x{k} a={alpha} b={beta}: {x} vs {y}"
                    );
                }
            }
        }
    }

    /// The cache-tiled remap produces exactly the naive oracle's output
    /// (same multiplications, different order — bitwise equal) for every
    /// shape, including shapes straddling the 32-wide tile edges.
    #[test]
    fn sort4_tiled_matches_naive(
        p in perm4(),
        d0 in 1usize..40,
        dp in 1usize..40,
        d2 in 1usize..6,
        d3 in 1usize..6,
        factor in prop_oneof![Just(1.0f64), Just(-1.0), Just(2.0), Just(-0.5)],
    ) {
        // Give the two tiled axes (input axis 0 and axis p[0]) the large
        // extents so tile-edge remainders actually occur.
        let mut dims = [d2, d3, d2, d3];
        dims[0] = d0;
        if p[0] != 0 {
            dims[p[0]] = dp;
        }
        let n: usize = dims.iter().product();
        let src: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
        let mut got = vec![0.0; n];
        let mut want = vec![0.0; n];
        sort_4_tiled(&src, &mut got, dims, p, factor);
        sort_4_naive(&src, &mut want, dims, p, factor);
        prop_assert_eq!(got, want);
    }

    /// dgemm is linear in alpha: gemm(2a) == 2 * gemm(a) with beta=0.
    #[test]
    fn dgemm_alpha_linearity(
        m in 1usize..6,
        n in 1usize..6,
        k in 1usize..6,
    ) {
        let a: Vec<f64> = (0..m * k).map(|i| i as f64 * 0.1).collect();
        let b: Vec<f64> = (0..k * n).map(|i| 1.0 - i as f64 * 0.05).collect();
        let mut c1 = vec![0.0; m * n];
        let mut c2 = vec![0.0; m * n];
        dgemm(Trans::T, Trans::N, m, n, k, 1.0, &a, &b, 0.0, &mut c1);
        dgemm(Trans::T, Trans::N, m, n, k, 2.0, &a, &b, 0.0, &mut c2);
        for (x, y) in c1.iter().zip(&c2) {
            prop_assert!((2.0 * x - y).abs() < 1e-10);
        }
    }
}
