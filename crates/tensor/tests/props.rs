//! Property tests: kernel implementations vs naive oracles.

use proptest::prelude::*;
use tensor_kernels::{
    daxpy, dgemm, dgemm_naive, dgemm_packed_epilogue, dgemm_packed_with, invert_perm, sort_4,
    sort_4_merge, sort_4_multi, sort_4_naive, sort_4_tiled, Epilogue, GemmParams, Perm4, SortSpec,
    Trans,
};

fn trans() -> impl Strategy<Value = Trans> {
    prop_oneof![Just(Trans::N), Just(Trans::T)]
}

fn perm4() -> impl Strategy<Value = Perm4> {
    Just(()).prop_perturb(|_, mut rng| {
        let mut p = [0usize, 1, 2, 3];
        // Fisher-Yates with the proptest rng.
        for i in (1..4).rev() {
            let j = (rng.next_u32() as usize) % (i + 1);
            p.swap(i, j);
        }
        p
    })
}

proptest! {
    /// Blocked dgemm agrees with the naive oracle for all flag combinations.
    #[test]
    fn dgemm_matches_naive(
        ta in trans(),
        tb in trans(),
        m in 0usize..12,
        n in 0usize..12,
        k in 0usize..12,
        alpha in -2.0f64..2.0,
        beta in -2.0f64..2.0,
        seed in 0u64..1000,
    ) {
        let gen = |len: usize, salt: u64| -> Vec<f64> {
            (0..len).map(|i| {
                let x = (i as u64).wrapping_mul(6364136223846793005).wrapping_add(seed ^ salt);
                ((x >> 11) as f64 / (1u64 << 53) as f64) - 0.5
            }).collect()
        };
        let a = gen(m * k, 1);
        let b = gen(k * n, 2);
        let c0 = gen(m * n, 3);
        let mut c1 = c0.clone();
        let mut c2 = c0;
        dgemm(ta, tb, m, n, k, alpha, &a, &b, beta, &mut c1);
        dgemm_naive(ta, tb, m, n, k, alpha, &a, &b, beta, &mut c2);
        for (x, y) in c1.iter().zip(&c2) {
            prop_assert!((x - y).abs() < 1e-10, "{x} vs {y}");
        }
    }

    /// The 4x4-blocked kernel has edge paths wherever a dimension is not
    /// a multiple of the block: exercise them with odd and prime sizes
    /// (1x1, 1xk, prime dims), all four transpose combinations per case.
    #[test]
    fn dgemm_odd_sizes_all_transposes(
        mi in 0usize..8,
        ni in 0usize..8,
        ki in 0usize..8,
        alpha in prop_oneof![Just(1.0f64), Just(-0.5), Just(2.0)],
        beta in prop_oneof![Just(0.0f64), Just(1.0), Just(-1.5)],
        seed in 0u64..1000,
    ) {
        // 1 and the primes straddling the 4-wide block boundary.
        const ODD: [usize; 8] = [1, 2, 3, 5, 7, 11, 13, 17];
        let (m, n, k) = (ODD[mi], ODD[ni], ODD[ki]);
        let gen = |len: usize, salt: u64| -> Vec<f64> {
            (0..len).map(|i| {
                let x = (i as u64).wrapping_mul(6364136223846793005).wrapping_add(seed ^ salt);
                ((x >> 11) as f64 / (1u64 << 53) as f64) - 0.5
            }).collect()
        };
        let a = gen(m * k, 11);
        let b = gen(k * n, 12);
        let c0 = gen(m * n, 13);
        for ta in [Trans::N, Trans::T] {
            for tb in [Trans::N, Trans::T] {
                let mut c1 = c0.clone();
                let mut c2 = c0.clone();
                dgemm(ta, tb, m, n, k, alpha, &a, &b, beta, &mut c1);
                dgemm_naive(ta, tb, m, n, k, alpha, &a, &b, beta, &mut c2);
                for (x, y) in c1.iter().zip(&c2) {
                    prop_assert!(
                        (x - y).abs() < 1e-10,
                        "{ta:?}{tb:?} {m}x{n}x{k}: {x} vs {y}"
                    );
                }
            }
        }
    }

    /// sort_4 is a bijection: applying a permutation then its inverse (with
    /// reciprocal factors) restores the input exactly.
    #[test]
    fn sort4_roundtrip(
        p in perm4(),
        d0 in 1usize..5,
        d1 in 1usize..5,
        d2 in 1usize..5,
        d3 in 1usize..5,
        factor in prop_oneof![Just(1.0f64), Just(-1.0), Just(2.0), Just(-0.5)],
    ) {
        let dims = [d0, d1, d2, d3];
        let n: usize = dims.iter().product();
        let src: Vec<f64> = (0..n).map(|i| i as f64 + 0.5).collect();
        let odims = [dims[p[0]], dims[p[1]], dims[p[2]], dims[p[3]]];
        let mut mid = vec![0.0; n];
        let mut back = vec![0.0; n];
        sort_4(&src, &mut mid, dims, p, factor);
        sort_4(&mid, &mut back, odims, invert_perm(&p), 1.0 / factor);
        for (x, y) in src.iter().zip(&back) {
            prop_assert!((x - y).abs() < 1e-12);
        }
    }

    /// sort_4 preserves the multiset of |values| (scaled).
    #[test]
    fn sort4_preserves_content(
        p in perm4(),
        d0 in 1usize..5,
        d1 in 1usize..5,
        d2 in 1usize..5,
        d3 in 1usize..5,
    ) {
        let dims = [d0, d1, d2, d3];
        let n: usize = dims.iter().product();
        let src: Vec<f64> = (0..n).map(|i| (i * i) as f64).collect();
        let mut dst = vec![0.0; n];
        sort_4(&src, &mut dst, dims, p, 1.0);
        let mut a = src.clone();
        let mut b = dst.clone();
        a.sort_by(|x, y| x.partial_cmp(y).unwrap());
        b.sort_by(|x, y| x.partial_cmp(y).unwrap());
        prop_assert_eq!(a, b);
    }

    /// The packed engine agrees with the naive oracle to 1e-12 for all
    /// four transpose combinations, degenerate alpha/beta, and odd and
    /// prime sizes straddling the MC/KC/NC block edges. Shrunk block
    /// parameters (mc=16, kc=8, nc=12) put every size in the list on
    /// both sides of some cache-block boundary, and sizes that are not
    /// multiples of MR=8 / NR=6 exercise the zero-padded micropanels and
    /// the clipped writeback.
    #[test]
    fn packed_dgemm_matches_naive_all_transposes(
        mi in 0usize..8,
        ni in 0usize..8,
        ki in 0usize..8,
        alpha in prop_oneof![Just(0.0f64), Just(1.0), Just(-0.5), Just(2.0)],
        beta in prop_oneof![Just(0.0f64), Just(1.0), Just(-0.5), Just(2.0)],
        seed in 0u64..1000,
    ) {
        const ODD: [usize; 8] = [1, 5, 7, 9, 13, 17, 23, 31];
        let params = GemmParams { mc: 16, kc: 8, nc: 12 };
        let (m, n, k) = (ODD[mi], ODD[ni], ODD[ki]);
        let gen = |len: usize, salt: u64| -> Vec<f64> {
            (0..len).map(|i| {
                let x = (i as u64).wrapping_mul(6364136223846793005).wrapping_add(seed ^ salt);
                ((x >> 11) as f64 / (1u64 << 53) as f64) - 0.5
            }).collect()
        };
        let a = gen(m * k, 21);
        let b = gen(k * n, 22);
        let c0 = gen(m * n, 23);
        let mut ap = vec![0.0; params.packed_a_len(m, k)];
        let mut bp = vec![0.0; params.packed_b_len(n, k)];
        for ta in [Trans::N, Trans::T] {
            for tb in [Trans::N, Trans::T] {
                let mut c1 = c0.clone();
                let mut c2 = c0.clone();
                dgemm_packed_with(
                    &params, ta, tb, m, n, k, alpha, &a, &b, beta, &mut c1, &mut ap, &mut bp,
                );
                dgemm_naive(ta, tb, m, n, k, alpha, &a, &b, beta, &mut c2);
                for (x, y) in c1.iter().zip(&c2) {
                    prop_assert!(
                        (x - y).abs() < 1e-12,
                        "{ta:?}{tb:?} {m}x{n}x{k} a={alpha} b={beta}: {x} vs {y}"
                    );
                }
            }
        }
    }

    /// The cache-tiled remap produces exactly the naive oracle's output
    /// (same multiplications, different order — bitwise equal) for every
    /// shape, including shapes straddling the 32-wide tile edges.
    #[test]
    fn sort4_tiled_matches_naive(
        p in perm4(),
        d0 in 1usize..40,
        dp in 1usize..40,
        d2 in 1usize..6,
        d3 in 1usize..6,
        factor in prop_oneof![Just(1.0f64), Just(-1.0), Just(2.0), Just(-0.5)],
    ) {
        // Give the two tiled axes (input axis 0 and axis p[0]) the large
        // extents so tile-edge remainders actually occur.
        let mut dims = [d2, d3, d2, d3];
        dims[0] = d0;
        if p[0] != 0 {
            dims[p[0]] = dp;
        }
        let n: usize = dims.iter().product();
        let src: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
        let mut got = vec![0.0; n];
        let mut want = vec![0.0; n];
        sort_4_tiled(&src, &mut got, dims, p, factor);
        sort_4_naive(&src, &mut want, dims, p, factor);
        prop_assert_eq!(got, want);
    }

    /// The fused ScaleAccumulate epilogue equals the staged pipeline
    /// (packed GEMM, then a separate `daxpy` of the addend) to 1e-12,
    /// across all four transpose combinations and odd block-straddling
    /// sizes.
    #[test]
    fn fused_scale_accumulate_matches_separate(
        mi in 0usize..8,
        ni in 0usize..8,
        ki in 0usize..8,
        alpha in prop_oneof![Just(1.0f64), Just(-0.5), Just(2.0)],
        beta in prop_oneof![Just(0.0f64), Just(1.0), Just(-0.5)],
        gamma in prop_oneof![Just(1.0f64), Just(-1.0), Just(0.25)],
        seed in 0u64..1000,
    ) {
        const ODD: [usize; 8] = [1, 5, 7, 9, 13, 17, 23, 31];
        let params = GemmParams { mc: 16, kc: 8, nc: 12 };
        let (m, n, k) = (ODD[mi], ODD[ni], ODD[ki]);
        let gen = |len: usize, salt: u64| -> Vec<f64> {
            (0..len).map(|i| {
                let x = (i as u64).wrapping_mul(6364136223846793005).wrapping_add(seed ^ salt);
                ((x >> 11) as f64 / (1u64 << 53) as f64) - 0.5
            }).collect()
        };
        let a = gen(m * k, 31);
        let b = gen(k * n, 32);
        let x = gen(m * n, 33);
        let c0 = gen(m * n, 34);
        let mut ap = vec![0.0; params.packed_a_len(m, k)];
        let mut bp = vec![0.0; params.packed_b_len(n, k)];
        for ta in [Trans::N, Trans::T] {
            for tb in [Trans::N, Trans::T] {
                let mut got = c0.clone();
                dgemm_packed_epilogue(
                    &params, ta, tb, m, n, k, alpha, &a, &b,
                    Epilogue::ScaleAccumulate { beta, gamma, x: &x },
                    &mut got, &mut ap, &mut bp,
                );
                let mut want = c0.clone();
                dgemm_packed_with(
                    &params, ta, tb, m, n, k, alpha, &a, &b, beta, &mut want, &mut ap, &mut bp,
                );
                daxpy(gamma, &x, &mut want);
                for (g, w) in got.iter().zip(&want) {
                    let scale = w.abs().max(1.0);
                    prop_assert!(
                        (g - w).abs() / scale < 1e-12,
                        "{ta:?}{tb:?} {m}x{n}x{k}: {g} vs {w}"
                    );
                }
            }
        }
    }

    /// The fused PermutedScatter epilogue equals the staged pipeline
    /// (packed GEMM + optional addend, then a separate `sort_4`) across
    /// all 24 permutations, all four transpose combinations, and odd
    /// tile shapes.
    #[test]
    fn fused_permuted_scatter_matches_separate(
        d0 in 1usize..6,
        d1 in 1usize..6,
        d2 in 1usize..6,
        d3 in 1usize..6,
        ki in 0usize..8,
        with_addend in any::<bool>(),
        factor in prop_oneof![Just(1.0f64), Just(-1.0), Just(0.5)],
        seed in 0u64..1000,
    ) {
        const ODD: [usize; 8] = [1, 5, 7, 9, 13, 17, 23, 31];
        let params = GemmParams { mc: 16, kc: 8, nc: 12 };
        let dims = [d0, d1, d2, d3];
        let (m, n, k) = (d0 * d1, d2 * d3, ODD[ki]);
        let gen = |len: usize, salt: u64| -> Vec<f64> {
            (0..len).map(|i| {
                let x = (i as u64).wrapping_mul(6364136223846793005).wrapping_add(seed ^ salt);
                ((x >> 11) as f64 / (1u64 << 53) as f64) - 0.5
            }).collect()
        };
        let a = gen(m * k, 41);
        let b = gen(k * n, 42);
        let x = gen(m * n, 43);
        let x_opt = if with_addend { Some(x.as_slice()) } else { None };
        let mut ap = vec![0.0; params.packed_a_len(m, k)];
        let mut bp = vec![0.0; params.packed_b_len(n, k)];
        for pi in 0..24usize {
            // Enumerate all 24 permutations via factorial (Lehmer) digits.
            let mut pool = vec![0usize, 1, 2, 3];
            let perm = [
                pool.remove(pi / 6),
                pool.remove((pi % 6) / 2),
                pool.remove(pi % 2),
                pool.remove(0),
            ];
            for ta in [Trans::N, Trans::T] {
                for tb in [Trans::N, Trans::T] {
                    let mut got = vec![f64::NAN; m * n];
                    dgemm_packed_epilogue(
                        &params, ta, tb, m, n, k, 1.25, &a, &b,
                        Epilogue::PermutedScatter { dims, perm, factor, gamma: -2.0, x: x_opt },
                        &mut got, &mut ap, &mut bp,
                    );
                    let mut prod = vec![0.0; m * n];
                    dgemm_packed_with(
                        &params, ta, tb, m, n, k, 1.25, &a, &b, 0.0, &mut prod, &mut ap, &mut bp,
                    );
                    if let Some(x) = x_opt {
                        daxpy(-2.0, x, &mut prod);
                    }
                    let mut want = vec![0.0; m * n];
                    sort_4(&prod, &mut want, dims, perm, factor);
                    for (g, w) in got.iter().zip(&want) {
                        let scale = w.abs().max(1.0);
                        prop_assert!(
                            (g - w).abs() / scale < 1e-12,
                            "{ta:?}{tb:?} perm {perm:?} {m}x{n}x{k}: {g} vs {w}"
                        );
                    }
                }
            }
        }
    }

    /// One-pass sort_4_multi equals one sort_4 call per branch, and
    /// sort_4_merge equals the staged sort-into-temporary + daxpy loop.
    #[test]
    fn sort4_multi_and_merge_match_repeated_sort4(
        p1 in perm4(),
        p2 in perm4(),
        p3 in perm4(),
        d0 in 1usize..34,
        d1 in 1usize..10,
        d2 in 1usize..10,
        d3 in 1usize..6,
        nb in 1usize..4,
    ) {
        let dims = [d0, d1, d2, d3];
        let n: usize = dims.iter().product();
        let src: Vec<f64> = (0..n).map(|i| (i as f64 * 0.61).sin()).collect();
        let specs: Vec<SortSpec> = [p1, p2, p3][..nb]
            .iter()
            .zip([1.0, -0.5, 2.0])
            .map(|(&perm, factor)| SortSpec { perm, factor })
            .collect();
        // Multi: full overwrite per branch, bit-identical to sort_4.
        let mut got: Vec<Vec<f64>> = vec![vec![f64::NAN; n]; nb];
        {
            let mut views: Vec<&mut [f64]> = got.iter_mut().map(|v| v.as_mut_slice()).collect();
            sort_4_multi(&src, &mut views, dims, &specs);
        }
        for (g, s) in got.iter().zip(&specs) {
            let mut want = vec![0.0; n];
            sort_4(&src, &mut want, dims, s.perm, s.factor);
            prop_assert_eq!(g, &want, "dims {:?} perm {:?}", dims, s.perm);
        }
        // Merge: sum of all branches, to rounding (branch arrival order
        // at a given element differs from the staged loop's).
        let mut merged = vec![f64::NAN; n];
        sort_4_merge(&src, &mut merged, dims, &specs);
        let mut want = vec![0.0; n];
        let mut tmp = vec![0.0; n];
        for s in &specs {
            sort_4(&src, &mut tmp, dims, s.perm, s.factor);
            daxpy(1.0, &tmp, &mut want);
        }
        for (g, w) in merged.iter().zip(&want) {
            let scale = w.abs().max(1.0);
            prop_assert!((g - w).abs() / scale < 1e-12, "{g} vs {w}");
        }
    }

    /// Debug builds reject aliasing src/dst in every sort_4 entry point
    /// — the fused paths make accidental in-place remaps easy to write.
    #[test]
    #[cfg(debug_assertions)]
    fn sort4_rejects_aliasing_slices(
        p in perm4(),
        d0 in 1usize..6,
        d1 in 1usize..6,
        d2 in 1usize..6,
        d3 in 1usize..6,
    ) {
        let dims = [d0, d1, d2, d3];
        let n: usize = dims.iter().product();
        let mut buf = vec![0.0; n];
        let ptr = buf.as_mut_ptr();
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let result = std::panic::catch_unwind(move || {
            // SAFETY: the overlapping views exist only to exercise the
            // alias guard, which panics before any element is touched.
            let src = unsafe { std::slice::from_raw_parts(ptr, n) };
            let dst = unsafe { std::slice::from_raw_parts_mut(ptr, n) };
            sort_4(src, dst, dims, p, 1.0);
        });
        std::panic::set_hook(prev);
        prop_assert!(result.is_err(), "aliasing sort_4 did not panic");
    }

    /// dgemm is linear in alpha: gemm(2a) == 2 * gemm(a) with beta=0.
    #[test]
    fn dgemm_alpha_linearity(
        m in 1usize..6,
        n in 1usize..6,
        k in 1usize..6,
    ) {
        let a: Vec<f64> = (0..m * k).map(|i| i as f64 * 0.1).collect();
        let b: Vec<f64> = (0..k * n).map(|i| 1.0 - i as f64 * 0.05).collect();
        let mut c1 = vec![0.0; m * n];
        let mut c2 = vec![0.0; m * n];
        dgemm(Trans::T, Trans::N, m, n, k, 1.0, &a, &b, 0.0, &mut c1);
        dgemm(Trans::T, Trans::N, m, n, k, 2.0, &a, &b, 0.0, &mut c2);
        for (x, y) in c1.iter().zip(&c2) {
            prop_assert!((2.0 * x - y).abs() < 1e-10);
        }
    }
}
