//! Elementwise vector helpers (`DFILL`, `DAXPY`, `DDOT`) and comparison
//! utilities for the "matched up to the 14th digit" agreement checks.
//!
//! `dfill`/`daxpy` carry the same runtime AVX2+FMA dispatch as the GEMM
//! microkernel ([`crate::pack::simd_available`]), so the accumulates that
//! stay *unfused* (reduction-tree interior nodes, staged sorts) are not
//! left scalar while the fused epilogues run vectorized.

/// `DFILL`: set every element to `value`.
pub fn dfill(x: &mut [f64], value: f64) {
    #[cfg(target_arch = "x86_64")]
    if crate::pack::simd_available() {
        // Safety: AVX2 presence was just verified at runtime.
        unsafe { dfill_avx2(x, value) };
        return;
    }
    x.fill(value);
}

/// `DAXPY`-style accumulate: `y += alpha * x`. Panics on length mismatch.
///
/// The SIMD path contracts the multiply-add with FMA, so it agrees with
/// the scalar fallback to one rounding step per element, not bitwise —
/// the same contract as the GEMM microkernel pair.
pub fn daxpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "daxpy length mismatch");
    #[cfg(target_arch = "x86_64")]
    if crate::pack::simd_available() {
        // Safety: AVX2+FMA presence was just verified at runtime.
        unsafe { daxpy_avx2(alpha, x, y) };
        return;
    }
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// # Safety
/// Caller must have verified AVX2 support (see
/// [`crate::pack::simd_available`]).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn dfill_avx2(x: &mut [f64], value: f64) {
    use core::arch::x86_64::*;
    let v = _mm256_set1_pd(value);
    let mut chunks = x.chunks_exact_mut(8);
    for c in &mut chunks {
        let p = c.as_mut_ptr();
        _mm256_storeu_pd(p, v);
        _mm256_storeu_pd(p.add(4), v);
    }
    for e in chunks.into_remainder() {
        *e = value;
    }
}

/// # Safety
/// Caller must have verified AVX2 and FMA support (see
/// [`crate::pack::simd_available`]).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn daxpy_avx2(alpha: f64, x: &[f64], y: &mut [f64]) {
    use core::arch::x86_64::*;
    let va = _mm256_set1_pd(alpha);
    let n8 = x.len() / 8 * 8;
    let (mut px, mut py) = (x.as_ptr(), y.as_mut_ptr());
    let mut i = 0;
    while i < n8 {
        let y0 = _mm256_fmadd_pd(va, _mm256_loadu_pd(px), _mm256_loadu_pd(py));
        let y1 = _mm256_fmadd_pd(va, _mm256_loadu_pd(px.add(4)), _mm256_loadu_pd(py.add(4)));
        _mm256_storeu_pd(py, y0);
        _mm256_storeu_pd(py.add(4), y1);
        px = px.add(8);
        py = py.add(8);
        i += 8;
    }
    for (yi, xi) in y[n8..].iter_mut().zip(&x[n8..]) {
        *yi += alpha * xi;
    }
}

/// Dot product.
pub fn ddot(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "ddot length mismatch");
    x.iter().zip(y).map(|(a, b)| a * b).sum()
}

/// Largest absolute elementwise difference.
pub fn max_abs_diff(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len());
    x.iter()
        .zip(y)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0, f64::max)
}

/// Relative difference `|a - b| / max(|a|, |b|, 1)` — the metric used for
/// the variants-match-reference assertions.
pub fn rel_diff(a: f64, b: f64) -> f64 {
    (a - b).abs() / a.abs().max(b.abs()).max(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fill_and_axpy() {
        let mut y = vec![0.0; 4];
        dfill(&mut y, 2.0);
        daxpy(3.0, &[1.0, 2.0, 3.0, 4.0], &mut y);
        assert_eq!(y, vec![5.0, 8.0, 11.0, 14.0]);
    }

    #[test]
    fn dot() {
        assert_eq!(ddot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
    }

    #[test]
    fn fill_and_axpy_cover_simd_bodies_and_tails() {
        // Lengths straddling the 8-wide vector body: 0..=9 plus a long one.
        for n in (0..=9).chain([1037]) {
            let mut y = vec![0.5; n];
            dfill(&mut y, -3.0);
            assert!(y.iter().all(|&v| v == -3.0), "n={n}");
            let x: Vec<f64> = (0..n).map(|i| i as f64 + 0.25).collect();
            daxpy(2.0, &x, &mut y);
            for (i, &yi) in y.iter().enumerate() {
                let want = -3.0 + 2.0 * (i as f64 + 0.25);
                assert!((yi - want).abs() < 1e-12, "n={n} i={i}: {yi} vs {want}");
            }
        }
    }

    #[test]
    fn diffs() {
        assert_eq!(max_abs_diff(&[1.0, 5.0], &[1.5, 5.0]), 0.5);
        assert!(rel_diff(1e15, 1e15 * (1.0 + 1e-13)) < 1e-12);
        assert!(rel_diff(0.0, 0.5) == 0.5);
    }
}
