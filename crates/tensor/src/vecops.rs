//! Elementwise vector helpers (`DFILL`, `DAXPY`, `DDOT`) and comparison
//! utilities for the "matched up to the 14th digit" agreement checks.

/// `DFILL`: set every element to `value`.
pub fn dfill(x: &mut [f64], value: f64) {
    x.fill(value);
}

/// `DAXPY`-style accumulate: `y += alpha * x`. Panics on length mismatch.
pub fn daxpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "daxpy length mismatch");
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// Dot product.
pub fn ddot(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "ddot length mismatch");
    x.iter().zip(y).map(|(a, b)| a * b).sum()
}

/// Largest absolute elementwise difference.
pub fn max_abs_diff(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len());
    x.iter()
        .zip(y)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0, f64::max)
}

/// Relative difference `|a - b| / max(|a|, |b|, 1)` — the metric used for
/// the variants-match-reference assertions.
pub fn rel_diff(a: f64, b: f64) -> f64 {
    (a - b).abs() / a.abs().max(b.abs()).max(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fill_and_axpy() {
        let mut y = vec![0.0; 4];
        dfill(&mut y, 2.0);
        daxpy(3.0, &[1.0, 2.0, 3.0, 4.0], &mut y);
        assert_eq!(y, vec![5.0, 8.0, 11.0, 14.0]);
    }

    #[test]
    fn dot() {
        assert_eq!(ddot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
    }

    #[test]
    fn diffs() {
        assert_eq!(max_abs_diff(&[1.0, 5.0], &[1.5, 5.0]), 0.5);
        assert!(rel_diff(1e15, 1e15 * (1.0 + 1e-13)) < 1e-12);
        assert!(rel_diff(0.0, 0.5) == 0.5);
    }
}
