//! Panel packing and register microkernels for the packed GEMM engine.
//!
//! The BLIS decomposition: the blocked loop nest in [`crate::gemm`] cuts
//! `C = op(A) * op(B)` into `MC x KC` panels of `op(A)` and `KC x NC`
//! panels of `op(B)`, and *packs* each panel into a contiguous scratch
//! buffer before any arithmetic touches it. Packing pays one streamed
//! copy to buy three things at once:
//!
//! * every transpose combination is normalized away — the microkernel
//!   sees one canonical layout regardless of `ta`/`tb`, so there is one
//!   hot loop instead of four;
//! * the microkernel's loads are unit-stride and 64-byte-dense: an
//!   `MR`-row slab of A and an `NR`-column slab of B are interleaved by
//!   `k`-step, so each k-iteration reads exactly `MR + NR` contiguous
//!   doubles;
//! * edge tiles are zero-padded to full `MR x NR` shape inside the pack
//!   buffer, so the microkernel has no bounds logic at all — only the
//!   final writeback clips to the valid sub-tile.
//!
//! The microkernel computes an `MR x NR` block of `A_panel^T`-free
//! outer products into registers. On x86-64 with AVX2+FMA (detected at
//! runtime — the workspace is compiled for baseline x86-64, so this is
//! where the wide units are unlocked) the 8x6 tile holds 12 `ymm`
//! accumulators, two A vectors and one broadcast register: 12 FMAs per
//! 8 load-ops per k-step, enough to saturate both FMA ports. Elsewhere a
//! scalar fallback with the same semantics runs.

use crate::gemm::Trans;

/// Microkernel tile height (rows of C per register block).
pub const MR: usize = 8;
/// Microkernel tile width (columns of C per register block).
pub const NR: usize = 6;

/// Cache-blocking parameters of the packed GEMM loop nest. All three are
/// free (the kernels are correct for any values >= 1); the defaults size
/// the packed A panel for L2 and the B micropanel for L1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GemmParams {
    /// Rows of `op(A)` per packed panel (L2 blocking).
    pub mc: usize,
    /// Depth of one packed panel pair (L1/L2 blocking).
    pub kc: usize,
    /// Columns of `op(B)` per packed panel (L3/DRAM blocking).
    pub nc: usize,
}

impl Default for GemmParams {
    fn default() -> Self {
        // A panel: 128 x 256 doubles = 256 KiB (fits a 1 MiB L2 with
        // room for the B stream); B micropanel: 6 x 256 = 12 KiB (L1).
        Self {
            mc: 128,
            kc: 256,
            nc: 2048,
        }
    }
}

impl GemmParams {
    /// Validate the parameters (all blocks nonzero).
    pub fn assert_valid(&self) {
        assert!(
            self.mc >= 1 && self.kc >= 1 && self.nc >= 1,
            "GEMM block sizes must be >= 1: {self:?}"
        );
    }

    /// Length of the packed-A scratch buffer for an `m x k` operand
    /// (largest `MC x KC` block, rows rounded up to full micropanels).
    pub fn packed_a_len(&self, m: usize, k: usize) -> usize {
        let mc = self.mc.min(m.max(1));
        let kc = self.kc.min(k.max(1));
        mc.div_ceil(MR) * MR * kc
    }

    /// Length of the packed-B scratch buffer for a `k x n` operand
    /// (largest `KC x NC` block, columns rounded up to full micropanels).
    pub fn packed_b_len(&self, n: usize, k: usize) -> usize {
        let nc = self.nc.min(n.max(1));
        let kc = self.kc.min(k.max(1));
        nc.div_ceil(NR) * NR * kc
    }
}

/// Pack the `mc x kc` block of `op(A)` starting at `(ic, pc)` into
/// micropanels: panel `ir` holds rows `ir*MR .. ir*MR+MR` of the block,
/// stored k-major (`ap[panel + l*MR + i]`), rows past `mc` zero-padded.
///
/// `op(A)` is `m x k`; storage is `m x k` column-major for `Trans::N`
/// and `k x m` column-major for `Trans::T`.
#[allow(clippy::too_many_arguments)]
pub fn pack_a(
    ta: Trans,
    a: &[f64],
    m: usize,
    k: usize,
    ic: usize,
    mc: usize,
    pc: usize,
    kc: usize,
    ap: &mut [f64],
) {
    debug_assert!(ic + mc <= m && pc + kc <= k);
    let panels = mc.div_ceil(MR);
    debug_assert!(ap.len() >= panels * MR * kc);
    for ir in 0..panels {
        let row0 = ic + ir * MR;
        let rows = MR.min(ic + mc - row0);
        let panel = &mut ap[ir * MR * kc..(ir + 1) * MR * kc];
        match ta {
            // A stored m x k: column pc+l holds rows contiguously.
            Trans::N => {
                for (l, chunk) in panel.chunks_exact_mut(MR).enumerate() {
                    let col = &a[(pc + l) * m + row0..(pc + l) * m + row0 + rows];
                    chunk[..rows].copy_from_slice(col);
                    chunk[rows..].fill(0.0);
                }
            }
            // A stored k x m: row i of op(A) is the contiguous column i
            // of the storage — stream it with a write stride of MR.
            Trans::T => {
                for i in 0..rows {
                    let col = &a[(row0 + i) * k + pc..(row0 + i) * k + pc + kc];
                    for (l, &v) in col.iter().enumerate() {
                        panel[l * MR + i] = v;
                    }
                }
                for i in rows..MR {
                    for l in 0..kc {
                        panel[l * MR + i] = 0.0;
                    }
                }
            }
        }
    }
}

/// Pack the `kc x nc` block of `op(B)` starting at `(pc, jc)` into
/// micropanels: panel `jr` holds columns `jr*NR .. jr*NR+NR` of the
/// block, stored k-major (`bp[panel + l*NR + j]`), columns past `nc`
/// zero-padded.
///
/// `op(B)` is `k x n`; storage is `k x n` column-major for `Trans::N`
/// and `n x k` column-major for `Trans::T`.
#[allow(clippy::too_many_arguments)]
pub fn pack_b(
    tb: Trans,
    b: &[f64],
    k: usize,
    n: usize,
    pc: usize,
    kc: usize,
    jc: usize,
    nc: usize,
    bp: &mut [f64],
) {
    debug_assert!(pc + kc <= k && jc + nc <= n);
    let panels = nc.div_ceil(NR);
    debug_assert!(bp.len() >= panels * NR * kc);
    for jr in 0..panels {
        let col0 = jc + jr * NR;
        let cols = NR.min(jc + nc - col0);
        let panel = &mut bp[jr * NR * kc..(jr + 1) * NR * kc];
        match tb {
            // B stored k x n: column col0+j is contiguous along k —
            // stream it with a write stride of NR.
            Trans::N => {
                for j in 0..cols {
                    let col = &b[(col0 + j) * k + pc..(col0 + j) * k + pc + kc];
                    for (l, &v) in col.iter().enumerate() {
                        panel[l * NR + j] = v;
                    }
                }
                for j in cols..NR {
                    for l in 0..kc {
                        panel[l * NR + j] = 0.0;
                    }
                }
            }
            // B stored n x k: row pc+l of op(B) holds the NR columns
            // contiguously.
            Trans::T => {
                for (l, chunk) in panel.chunks_exact_mut(NR).enumerate() {
                    let row = &b[(pc + l) * n + col0..(pc + l) * n + col0 + cols];
                    chunk[..cols].copy_from_slice(row);
                    chunk[cols..].fill(0.0);
                }
            }
        }
    }
}

/// `true` when the AVX2+FMA microkernel is usable on this machine.
#[cfg(target_arch = "x86_64")]
pub fn simd_available() -> bool {
    use std::sync::atomic::{AtomicU8, Ordering};
    static STATE: AtomicU8 = AtomicU8::new(0);
    match STATE.load(Ordering::Relaxed) {
        1 => true,
        2 => false,
        _ => {
            let ok = std::arch::is_x86_feature_detected!("avx2")
                && std::arch::is_x86_feature_detected!("fma");
            STATE.store(if ok { 1 } else { 2 }, Ordering::Relaxed);
            ok
        }
    }
}

/// `true` when the AVX2+FMA microkernel is usable on this machine.
#[cfg(not(target_arch = "x86_64"))]
pub fn simd_available() -> bool {
    false
}

/// Compute one `MR x NR` register tile: `acc = Ap_panel * Bp_panel` over
/// depth `kc`, written to `out` column-major (`out[i + j*MR]`). The
/// caller owns `alpha` scaling and the clipped accumulation into C.
#[inline]
pub fn microkernel(kc: usize, ap: &[f64], bp: &[f64], out: &mut [f64; MR * NR]) {
    debug_assert!(ap.len() >= kc * MR && bp.len() >= kc * NR);
    #[cfg(target_arch = "x86_64")]
    if simd_available() {
        // Safety: AVX2+FMA presence was just verified at runtime.
        unsafe { microkernel_avx2(kc, ap, bp, out) };
        return;
    }
    microkernel_generic(kc, ap, bp, out);
}

/// Portable microkernel: NR independent MR-wide accumulator rows, each
/// k-step one broadcast multiply-add per row. Same per-lane summation
/// *order* as the AVX2 path; the FMA units skip the intermediate
/// product rounding, so the two agree to within one rounding step per
/// k-iteration (not bitwise).
fn microkernel_generic(kc: usize, ap: &[f64], bp: &[f64], out: &mut [f64; MR * NR]) {
    let mut acc = [[0.0f64; MR]; NR];
    for l in 0..kc {
        let a = &ap[l * MR..l * MR + MR];
        let b = &bp[l * NR..l * NR + NR];
        for (accj, &bj) in acc.iter_mut().zip(b) {
            for (accij, &ai) in accj.iter_mut().zip(a) {
                *accij += ai * bj;
            }
        }
    }
    for (j, accj) in acc.iter().enumerate() {
        out[j * MR..j * MR + MR].copy_from_slice(accj);
    }
}

/// AVX2+FMA microkernel: 12 ymm accumulators (two 4-lane vectors per
/// column of the 8x6 tile), two A loads and one B broadcast per FMA
/// pair. 12 FMAs against 8 load-ops per k-step keeps both FMA ports
/// busy without saturating the load ports.
///
/// # Safety
/// Caller must have verified AVX2 and FMA support (see
/// [`simd_available`]); slice lengths are checked by the caller
/// (`debug_assert` in [`microkernel`]).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn microkernel_avx2(kc: usize, ap: &[f64], bp: &[f64], out: &mut [f64; MR * NR]) {
    use core::arch::x86_64::*;
    let mut acc = [[_mm256_setzero_pd(); 2]; NR];
    let mut pa = ap.as_ptr();
    let mut pb = bp.as_ptr();
    for _ in 0..kc {
        let a0 = _mm256_loadu_pd(pa);
        let a1 = _mm256_loadu_pd(pa.add(4));
        for (j, accj) in acc.iter_mut().enumerate() {
            let bj = _mm256_broadcast_sd(&*pb.add(j));
            accj[0] = _mm256_fmadd_pd(a0, bj, accj[0]);
            accj[1] = _mm256_fmadd_pd(a1, bj, accj[1]);
        }
        pa = pa.add(MR);
        pb = pb.add(NR);
    }
    for (j, accj) in acc.iter().enumerate() {
        _mm256_storeu_pd(out.as_mut_ptr().add(j * MR), accj[0]);
        _mm256_storeu_pd(out.as_mut_ptr().add(j * MR + 4), accj[1]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_a_normalizes_transposes() {
        // op(A) = [[1,3],[2,4]] (2x2) from both storages packs identically.
        let m = 2;
        let k = 2;
        let a_n = vec![1.0, 2.0, 3.0, 4.0]; // m x k column-major
        let a_t = vec![1.0, 3.0, 2.0, 4.0]; // k x m column-major
        let mut p1 = vec![-1.0; MR * k];
        let mut p2 = vec![-1.0; MR * k];
        pack_a(Trans::N, &a_n, m, k, 0, m, 0, k, &mut p1);
        pack_a(Trans::T, &a_t, m, k, 0, m, 0, k, &mut p2);
        assert_eq!(p1, p2);
        // k-major layout: [A00, A10, 0.., A01, A11, 0..].
        assert_eq!(&p1[..2], &[1.0, 2.0]);
        assert_eq!(&p1[MR..MR + 2], &[3.0, 4.0]);
        assert!(p1[2..MR].iter().all(|&x| x == 0.0), "zero padding");
    }

    #[test]
    fn pack_b_normalizes_transposes() {
        // op(B) = [[5,7],[6,8]] (2x2) from both storages packs identically.
        let k = 2;
        let n = 2;
        let b_n = vec![5.0, 6.0, 7.0, 8.0]; // k x n column-major
        let b_t = vec![5.0, 7.0, 6.0, 8.0]; // n x k column-major
        let mut p1 = vec![-1.0; NR * k];
        let mut p2 = vec![-1.0; NR * k];
        pack_b(Trans::N, &b_n, k, n, 0, k, 0, n, &mut p1);
        pack_b(Trans::T, &b_t, k, n, 0, k, 0, n, &mut p2);
        assert_eq!(p1, p2);
        // k-major layout: [B00, B01, 0.., B10, B11, 0..].
        assert_eq!(&p1[..2], &[5.0, 7.0]);
        assert_eq!(&p1[NR..NR + 2], &[6.0, 8.0]);
    }

    #[test]
    fn microkernel_matches_reference() {
        // One full MR x NR tile at depth 7, random-ish values.
        let kc = 7;
        let ap: Vec<f64> = (0..kc * MR).map(|i| (i as f64 * 0.37).sin()).collect();
        let bp: Vec<f64> = (0..kc * NR).map(|i| (i as f64 * 0.73).cos()).collect();
        let mut out = [0.0; MR * NR];
        microkernel(kc, &ap, &bp, &mut out);
        for j in 0..NR {
            for i in 0..MR {
                let want: f64 = (0..kc).map(|l| ap[l * MR + i] * bp[l * NR + j]).sum();
                assert!((out[i + j * MR] - want).abs() < 1e-13, "({i},{j})");
            }
        }
    }

    #[test]
    fn generic_and_dispatch_agree() {
        let kc = 13;
        let ap: Vec<f64> = (0..kc * MR).map(|i| (i as f64).sqrt()).collect();
        let bp: Vec<f64> = (0..kc * NR).map(|i| 1.0 / (i as f64 + 1.0)).collect();
        let mut o1 = [0.0; MR * NR];
        let mut o2 = [0.0; MR * NR];
        microkernel(kc, &ap, &bp, &mut o1);
        microkernel_generic(kc, &ap, &bp, &mut o2);
        // Same summation order; FMA only removes the intermediate
        // product rounding, so agreement is to ~1 ulp per k-step.
        for (x, y) in o1.iter().zip(&o2) {
            assert!((x - y).abs() <= 1e-13 * y.abs().max(1.0), "{x} vs {y}");
        }
    }

    #[test]
    fn scratch_lens_cover_edges() {
        let p = GemmParams {
            mc: 10,
            kc: 7,
            nc: 11,
        };
        // m smaller than mc: rounded to one micropanel row of MR.
        assert_eq!(p.packed_a_len(3, 20), MR * 7);
        // m larger: mc=10 -> 2 micropanels.
        assert_eq!(p.packed_a_len(64, 5), 2 * MR * 5);
        assert_eq!(p.packed_b_len(4, 20), NR * 7);
        assert_eq!(p.packed_b_len(64, 3), 2 * NR * 3);
        // Degenerate dims never produce zero-length scratch for nonzero work.
        assert!(p.packed_a_len(1, 1) >= MR);
    }
}
