//! Dense tile kernels used by the TCE-generated CCSD code.
//!
//! The generated Fortran for the T1/T2 subroutines calls exactly three kinds
//! of computational kernels: `DGEMM` (generalized matrix multiply,
//! `C = alpha*op(A)*op(B) + beta*C`), `TCE_SORT_4` (a 4-index permutation
//! remap with a scale factor — "despite its name, the SORT operation does
//! not perform actual sorting of the data"), and elementwise helpers
//! (`DFILL`, `DAXPY`-style accumulation). This crate implements all of them
//! in Fortran column-major convention, plus naive reference versions used
//! by the property tests.

pub mod gemm;
pub mod pack;
pub mod sort4;
pub mod vecops;

pub use gemm::{
    dgemm, dgemm_blocked, dgemm_naive, dgemm_packed, dgemm_packed_epilogue, dgemm_packed_with,
    epilogue_params, packed_profitable, Epilogue, Trans,
};
pub use pack::GemmParams;
pub use sort4::{
    invert_perm, sort_4, sort_4_merge, sort_4_multi, sort_4_naive, sort_4_strided, sort_4_tiled,
    Perm4, SortSpec,
};
pub use vecops::{daxpy, ddot, dfill, max_abs_diff, rel_diff};

/// Column-major linear index of `(i, j)` in an `m x _` matrix.
#[inline(always)]
pub fn cm(i: usize, j: usize, m: usize) -> usize {
    i + j * m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn column_major_indexing() {
        // 2x3 matrix [[1,3,5],[2,4,6]] stored column-major 1..6.
        let m = 2;
        assert_eq!(cm(0, 0, m), 0);
        assert_eq!(cm(1, 0, m), 1);
        assert_eq!(cm(0, 1, m), 2);
        assert_eq!(cm(1, 2, m), 5);
    }
}
