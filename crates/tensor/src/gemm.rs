//! Column-major `DGEMM`: `C = alpha * op(A) * op(B) + beta * C`.
//!
//! Two engines, one entry point:
//!
//! * [`dgemm_blocked`] — the direct kernels: the TCE-generated chains
//!   call `dgemm('T', 'N', ...)` (Figure 1's task body), so the `T x N`
//!   case gets a 4x4 register-blocked microkernel ([`tn_block_4x4`]);
//!   the other combinations get layout-friendly loop orderings. No
//!   packing, no cache blocking: fast for tiles that fit in L1/L2.
//! * [`dgemm_packed`] — the BLIS-style engine: panels of `op(A)` and
//!   `op(B)` are packed into contiguous scratch ([`crate::pack`]),
//!   normalizing all four transpose combinations, and an `MR x NR`
//!   register microkernel (AVX2+FMA when the CPU has it) runs a
//!   `MC/KC/NC`-blocked loop nest over them. Wins once the operands
//!   outgrow cache or the wide units are worth unlocking.
//!
//! [`dgemm`] dispatches between them by problem volume; both are exact
//! against [`dgemm_naive`] in the property tests.

use crate::cm;
use crate::pack::{self, microkernel, GemmParams, MR, NR};
use crate::sort4::{is_perm, out_steps, sort_4, Perm4};

/// Transposition flag for one GEMM operand.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Trans {
    /// Use the operand as stored.
    N,
    /// Use the transpose of the stored operand.
    T,
}

impl Trans {
    /// Parse a Fortran character flag (`'N'`/`'T'`, case-insensitive).
    pub fn from_char(c: char) -> Option<Self> {
        match c.to_ascii_uppercase() {
            'N' => Some(Trans::N),
            'T' => Some(Trans::T),
            _ => None,
        }
    }
}

/// `C(m x n) = alpha * op(A) * op(B) + beta * C`.
///
/// * `op(A)` is `m x k`: `A` is stored `m x k` when `ta == N`, `k x m`
///   when `ta == T`;
/// * `op(B)` is `k x n`: `B` is stored `k x n` when `tb == N`, `n x k`
///   when `tb == T`.
///
/// All matrices are dense column-major with no leading-dimension padding.
/// Panics if slice lengths do not match the shapes.
///
/// Dispatches to the packed cache-blocked engine ([`dgemm_packed`]) when
/// the problem is large enough to amortize packing and the SIMD
/// microkernel is available, and to the direct kernels
/// ([`dgemm_blocked`]) otherwise.
#[allow(clippy::too_many_arguments)]
pub fn dgemm(
    ta: Trans,
    tb: Trans,
    m: usize,
    n: usize,
    k: usize,
    alpha: f64,
    a: &[f64],
    b: &[f64],
    beta: f64,
    c: &mut [f64],
) {
    if packed_profitable(m, n, k) {
        dgemm_packed(ta, tb, m, n, k, alpha, a, b, beta, c);
    } else {
        dgemm_blocked(ta, tb, m, n, k, alpha, a, b, beta, c);
    }
}

/// Volume threshold above which the packed engine is dispatched: below
/// this the tile fits comfortably in cache and packing is pure overhead.
const PACKED_MIN_VOLUME: usize = 16 * 1024;

/// `true` when [`dgemm`] would route an `m x n x k` product through the
/// packed engine. Exposed so callers that manage their own packing
/// scratch (the pooled chain executor) take the same branch.
pub fn packed_profitable(m: usize, n: usize, k: usize) -> bool {
    m * n * k >= PACKED_MIN_VOLUME && pack::simd_available()
}

/// The direct (non-packing) kernels; see the module docs.
#[allow(clippy::too_many_arguments)]
pub fn dgemm_blocked(
    ta: Trans,
    tb: Trans,
    m: usize,
    n: usize,
    k: usize,
    alpha: f64,
    a: &[f64],
    b: &[f64],
    beta: f64,
    c: &mut [f64],
) {
    assert_eq!(a.len(), m * k, "A has wrong size");
    assert_eq!(b.len(), k * n, "B has wrong size");
    assert_eq!(c.len(), m * n, "C has wrong size");

    if beta != 1.0 {
        if beta == 0.0 {
            c.fill(0.0);
        } else {
            for x in c.iter_mut() {
                *x *= beta;
            }
        }
    }
    if alpha == 0.0 || m == 0 || n == 0 {
        return;
    }

    match (ta, tb) {
        // Hot path: C[i,j] += alpha * sum_l A[l,i] * B[l,j].
        // Columns of A and B are contiguous: 4x4 register-blocked dot
        // products in the interior, scalar dots on the edges.
        (Trans::T, Trans::N) => {
            let (mb, nb) = (m - m % 4, n - n % 4);
            for j in (0..nb).step_by(4) {
                for i in (0..mb).step_by(4) {
                    tn_block_4x4(k, alpha, a, b, c, i, j, m);
                }
            }
            // Edges: rows mb..m under the blocked columns, then columns
            // nb..n in full.
            for j in 0..n {
                let bj = &b[j * k..(j + 1) * k];
                let i_start = if j < nb { mb } else { 0 };
                for i in i_start..m {
                    let ai = &a[i * k..(i + 1) * k];
                    let mut acc = 0.0;
                    for l in 0..k {
                        acc += ai[l] * bj[l];
                    }
                    c[cm(i, j, m)] += alpha * acc;
                }
            }
        }
        // C[i,j] += alpha * sum_l A[i,l] * B[l,j]; iterate l outer so the
        // A column and C column are streamed contiguously.
        (Trans::N, Trans::N) => {
            for j in 0..n {
                let cj = &mut c[j * m..(j + 1) * m];
                for l in 0..k {
                    let blj = alpha * b[cm(l, j, k)];
                    if blj == 0.0 {
                        continue;
                    }
                    let al = &a[l * m..(l + 1) * m];
                    for i in 0..m {
                        cj[i] += al[i] * blj;
                    }
                }
            }
        }
        // C[i,j] += alpha * sum_l A[i,l] * B[j,l].
        (Trans::N, Trans::T) => {
            for l in 0..k {
                let al = &a[l * m..(l + 1) * m];
                for j in 0..n {
                    let bjl = alpha * b[cm(j, l, n)];
                    if bjl == 0.0 {
                        continue;
                    }
                    let cj = &mut c[j * m..(j + 1) * m];
                    for i in 0..m {
                        cj[i] += al[i] * bjl;
                    }
                }
            }
        }
        // C[i,j] += alpha * sum_l A[l,i] * B[j,l].
        (Trans::T, Trans::T) => {
            for j in 0..n {
                for i in 0..m {
                    let ai = &a[i * k..(i + 1) * k];
                    let mut acc = 0.0;
                    for l in 0..k {
                        acc += ai[l] * b[cm(j, l, n)];
                    }
                    c[cm(i, j, m)] += alpha * acc;
                }
            }
        }
    }
}

/// `T x N` microkernel: `C[i..i+4, j..j+4] += alpha * A[:, i..i+4]^T *
/// B[:, j..j+4]` with sixteen register accumulators and the k-loop
/// unrolled by four.
///
/// A plain dot product is one serial floating-point add chain — every
/// `acc +=` waits on the previous one, so the FPU runs at the add
/// *latency* instead of its throughput. Sixteen independent accumulators
/// give the out-of-order core sixteen chains to overlap, and each loaded
/// `A`/`B` element is reused four times (2 flops per load instead of
/// one flop per load). Column-major friendly: all eight streamed columns
/// are contiguous.
#[allow(clippy::too_many_arguments)]
#[inline]
fn tn_block_4x4(
    k: usize,
    alpha: f64,
    a: &[f64],
    b: &[f64],
    c: &mut [f64],
    i: usize,
    j: usize,
    m: usize,
) {
    let a0 = &a[i * k..(i + 1) * k];
    let a1 = &a[(i + 1) * k..(i + 2) * k];
    let a2 = &a[(i + 2) * k..(i + 3) * k];
    let a3 = &a[(i + 3) * k..(i + 4) * k];
    let b0 = &b[j * k..(j + 1) * k];
    let b1 = &b[(j + 1) * k..(j + 2) * k];
    let b2 = &b[(j + 2) * k..(j + 3) * k];
    let b3 = &b[(j + 3) * k..(j + 4) * k];

    // acc[jj][ii] accumulates C[i+ii, j+jj].
    let mut acc = [[0.0f64; 4]; 4];
    macro_rules! step {
        ($l:expr) => {{
            let l = $l;
            let av = [a0[l], a1[l], a2[l], a3[l]];
            let bv = [b0[l], b1[l], b2[l], b3[l]];
            for (accj, &bj) in acc.iter_mut().zip(&bv) {
                for (accij, &ai) in accj.iter_mut().zip(&av) {
                    *accij += ai * bj;
                }
            }
        }};
    }
    let ku = k - k % 4;
    for l in (0..ku).step_by(4) {
        step!(l);
        step!(l + 1);
        step!(l + 2);
        step!(l + 3);
    }
    for l in ku..k {
        step!(l);
    }

    for (jj, accj) in acc.iter().enumerate() {
        for (ii, &accij) in accj.iter().enumerate() {
            c[cm(i + ii, j + jj, m)] += alpha * accij;
        }
    }
}

/// Packed cache-blocked GEMM with default [`GemmParams`] and internally
/// allocated packing scratch. For repeated calls, use
/// [`dgemm_packed_with`] with reused scratch buffers.
#[allow(clippy::too_many_arguments)]
pub fn dgemm_packed(
    ta: Trans,
    tb: Trans,
    m: usize,
    n: usize,
    k: usize,
    alpha: f64,
    a: &[f64],
    b: &[f64],
    beta: f64,
    c: &mut [f64],
) {
    let params = GemmParams::default();
    let mut ap = Vec::new();
    let mut bp = Vec::new();
    dgemm_packed_with(
        &params, ta, tb, m, n, k, alpha, a, b, beta, c, &mut ap, &mut bp,
    );
}

/// Packed cache-blocked GEMM: BLIS loop nest over `params` blocks.
///
/// `ap`/`bp` are packing scratch; they are resized to at most
/// [`GemmParams::packed_a_len`] / [`GemmParams::packed_b_len`] and their
/// contents on entry are irrelevant. Passing buffers with that capacity
/// (e.g. from a tile pool) makes the call allocation-free.
///
/// This is the [`Epilogue::Overwrite`] case of [`dgemm_packed_epilogue`].
#[allow(clippy::too_many_arguments)]
pub fn dgemm_packed_with(
    params: &GemmParams,
    ta: Trans,
    tb: Trans,
    m: usize,
    n: usize,
    k: usize,
    alpha: f64,
    a: &[f64],
    b: &[f64],
    beta: f64,
    c: &mut [f64],
    ap: &mut Vec<f64>,
    bp: &mut Vec<f64>,
) {
    dgemm_packed_epilogue(
        params,
        ta,
        tb,
        m,
        n,
        k,
        alpha,
        a,
        b,
        Epilogue::Overwrite { beta },
        c,
        ap,
        bp,
    );
}

/// What the packed engine does with each macro-tile of the product as it
/// leaves the registers — the fusion point for the stages that would
/// otherwise re-read `C` from memory (the REDUCE `daxpy`, the SORT
/// remap).
#[derive(Debug, Clone, Copy)]
pub enum Epilogue<'a> {
    /// `C = alpha * op(A)op(B) + beta * C` — the classic BLAS contract;
    /// `beta` is folded into the first visit of each element instead of
    /// a separate pre-scaling pass over `C`.
    Overwrite {
        /// Scale applied to the existing contents of `C`.
        beta: f64,
    },
    /// `C = beta * C + alpha * op(A)op(B) + gamma * X` — fuses a
    /// `daxpy`-style accumulate of `x` (e.g. a reduction-tree partial)
    /// into the writeback while the tile is register-hot. `x` is read
    /// once, on the first visit of each element.
    ScaleAccumulate {
        /// Scale applied to the existing contents of `C`.
        beta: f64,
        /// Scale applied to the addend `x`.
        gamma: f64,
        /// Addend, `m * n` column-major like `C`.
        x: &'a [f64],
    },
    /// `C[perm(i)] = factor * (alpha * op(A)op(B)[i] + gamma * X[i])` —
    /// fuses a single-branch `TCE_SORT_4` (and optionally the reduction
    /// root's accumulate) into the writeback, so the *sorted* tile is
    /// produced without ever materializing the unsorted product. The
    /// `m x n` product is interpreted as the 4-index tile `dims`
    /// (`dims[0] * dims[1] == m`, column-major) and `C` is fully
    /// overwritten in the permuted layout.
    ///
    /// Requires every element to be written exactly once, so the engine
    /// internally widens `kc` to cover all of `k` (see
    /// [`epilogue_params`]).
    PermutedScatter {
        /// Input-tile shape; `dims[0] * dims[1] == m`, product `m * n`.
        dims: [usize; 4],
        /// Output index `q` is input index `perm[q]` (as in `sort_4`).
        perm: Perm4,
        /// Sign/scale factor applied after the sum.
        factor: f64,
        /// Scale applied to the addend `x` (ignored when `x` is `None`).
        gamma: f64,
        /// Optional addend in the *unsorted* layout (`m * n`
        /// column-major).
        x: Option<&'a [f64]>,
    },
}

/// Effective blocking parameters of the packed engine under `epi`: the
/// scatter epilogue needs a single pass over `k` (each destination
/// element is written exactly once), so `kc` is clamped to cover all of
/// it. Callers sizing their own packing scratch (pool checkouts) must
/// use these parameters, not the raw ones.
pub fn epilogue_params(params: &GemmParams, epi: &Epilogue<'_>, k: usize) -> GemmParams {
    match epi {
        Epilogue::PermutedScatter { .. } => GemmParams {
            kc: params.kc.max(k.max(1)),
            ..*params
        },
        _ => *params,
    }
}

/// Packed cache-blocked GEMM with a pluggable macro-tile writeback; see
/// [`Epilogue`] for the semantics of each variant and
/// [`dgemm_packed_with`] for the scratch-buffer contract.
#[allow(clippy::too_many_arguments)]
pub fn dgemm_packed_epilogue(
    params: &GemmParams,
    ta: Trans,
    tb: Trans,
    m: usize,
    n: usize,
    k: usize,
    alpha: f64,
    a: &[f64],
    b: &[f64],
    epi: Epilogue<'_>,
    c: &mut [f64],
    ap: &mut Vec<f64>,
    bp: &mut Vec<f64>,
) {
    params.assert_valid();
    assert_eq!(a.len(), m * k, "A has wrong size");
    assert_eq!(b.len(), k * n, "B has wrong size");
    assert_eq!(c.len(), m * n, "C has wrong size");
    match &epi {
        Epilogue::Overwrite { .. } => {}
        Epilogue::ScaleAccumulate { x, .. } => {
            assert_eq!(x.len(), m * n, "epilogue addend has wrong size");
        }
        Epilogue::PermutedScatter { dims, perm, x, .. } => {
            assert!(is_perm(perm), "not a permutation: {perm:?}");
            assert_eq!(dims.iter().product::<usize>(), m * n, "dims/C mismatch");
            assert_eq!(dims[0] * dims[1], m, "dims rows != m");
            if let Some(x) = x {
                assert_eq!(x.len(), m * n, "epilogue addend has wrong size");
            }
        }
    }
    let params = epilogue_params(params, &epi, k);

    if alpha == 0.0 || m == 0 || n == 0 || k == 0 {
        epilogue_degenerate(&epi, c);
        return;
    }

    // Output strides of the scatter, indexed by input axis (zeros
    // otherwise; unused).
    let step = match &epi {
        Epilogue::PermutedScatter { dims, perm, .. } => out_steps(*dims, *perm),
        _ => [0; 4],
    };
    // Scatter destination offsets, hoisted: the row and column maps are
    // fixed for the whole call, so the writeback does two table lookups
    // per element instead of div/mod address arithmetic.
    let (row_off, col_off) = match &epi {
        Epilogue::PermutedScatter { dims, .. } => (
            (0..m)
                .map(|r| (r % dims[0]) * step[0] + (r / dims[0]) * step[1])
                .collect::<Vec<usize>>(),
            (0..n)
                .map(|q| (q % dims[2]) * step[2] + (q / dims[2]) * step[3])
                .collect::<Vec<usize>>(),
        ),
        _ => (Vec::new(), Vec::new()),
    };

    let a_len = params.packed_a_len(m, k);
    let b_len = params.packed_b_len(n, k);
    if ap.len() < a_len {
        ap.resize(a_len, 0.0);
    }
    if bp.len() < b_len {
        bp.resize(b_len, 0.0);
    }

    let mut tile = [0.0f64; MR * NR];
    for jc in (0..n).step_by(params.nc) {
        let ncc = params.nc.min(n - jc);
        for pc in (0..k).step_by(params.kc) {
            let kcc = params.kc.min(k - pc);
            pack::pack_b(tb, b, k, n, pc, kcc, jc, ncc, bp);
            for ic in (0..m).step_by(params.mc) {
                let mcc = params.mc.min(m - ic);
                pack::pack_a(ta, a, m, k, ic, mcc, pc, kcc, ap);
                for jr in 0..ncc.div_ceil(NR) {
                    let bpanel = &bp[jr * NR * kcc..(jr + 1) * NR * kcc];
                    let nr_eff = NR.min(ncc - jr * NR);
                    for ir in 0..mcc.div_ceil(MR) {
                        let apanel = &ap[ir * MR * kcc..(ir + 1) * MR * kcc];
                        let mr_eff = MR.min(mcc - ir * MR);
                        microkernel(kcc, apanel, bpanel, &mut tile);
                        // Clipped writeback: the tile rows/columns past
                        // the block edge are zero-padded products and
                        // are simply not stored. Each C element's first
                        // visit is its pc == 0 one; later kc blocks
                        // accumulate.
                        let c0 = ic + ir * MR;
                        match &epi {
                            Epilogue::Overwrite { beta } => {
                                let beta = if pc == 0 { *beta } else { 1.0 };
                                for j in 0..nr_eff {
                                    let cj = &mut c[(jc + jr * NR + j) * m + c0..][..mr_eff];
                                    let tj = &tile[j * MR..j * MR + mr_eff];
                                    if beta == 1.0 {
                                        for (cij, &tij) in cj.iter_mut().zip(tj) {
                                            *cij += alpha * tij;
                                        }
                                    } else if beta == 0.0 {
                                        for (cij, &tij) in cj.iter_mut().zip(tj) {
                                            *cij = alpha * tij;
                                        }
                                    } else {
                                        for (cij, &tij) in cj.iter_mut().zip(tj) {
                                            *cij = beta * *cij + alpha * tij;
                                        }
                                    }
                                }
                            }
                            Epilogue::ScaleAccumulate { beta, gamma, x } => {
                                for j in 0..nr_eff {
                                    let col = (jc + jr * NR + j) * m + c0;
                                    let cj = &mut c[col..col + mr_eff];
                                    let tj = &tile[j * MR..j * MR + mr_eff];
                                    if pc != 0 {
                                        for (cij, &tij) in cj.iter_mut().zip(tj) {
                                            *cij += alpha * tij;
                                        }
                                    } else {
                                        let xj = &x[col..col + mr_eff];
                                        if *beta == 0.0 {
                                            for i in 0..mr_eff {
                                                cj[i] = alpha * tj[i] + gamma * xj[i];
                                            }
                                        } else {
                                            for i in 0..mr_eff {
                                                cj[i] =
                                                    beta * cj[i] + alpha * tj[i] + gamma * xj[i];
                                            }
                                        }
                                    }
                                }
                            }
                            Epilogue::PermutedScatter {
                                factor, gamma, x, ..
                            } => {
                                // Single visit (kc covers k): scatter the
                                // finished elements straight to their
                                // permuted destinations.
                                debug_assert_eq!(pc, 0);
                                for j in 0..nr_eff {
                                    let q = jc + jr * NR + j;
                                    let obase = col_off[q];
                                    let roff = &row_off[c0..c0 + mr_eff];
                                    let tj = &tile[j * MR..j * MR + mr_eff];
                                    match x {
                                        Some(x) => {
                                            let xj = &x[q * m + c0..q * m + c0 + mr_eff];
                                            for i in 0..mr_eff {
                                                c[obase + roff[i]] =
                                                    factor * (alpha * tj[i] + gamma * xj[i]);
                                            }
                                        }
                                        None => {
                                            for i in 0..mr_eff {
                                                c[obase + roff[i]] = factor * alpha * tj[i];
                                            }
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
    }
}

/// The epilogue with a zero product contribution (`alpha == 0` or a
/// degenerate dimension): what remains of each contract.
fn epilogue_degenerate(epi: &Epilogue<'_>, c: &mut [f64]) {
    match epi {
        Epilogue::Overwrite { beta } => {
            if *beta == 0.0 {
                c.fill(0.0);
            } else if *beta != 1.0 {
                for x in c.iter_mut() {
                    *x *= beta;
                }
            }
        }
        Epilogue::ScaleAccumulate { beta, gamma, x } => {
            if *beta == 0.0 {
                for (ci, &xi) in c.iter_mut().zip(*x) {
                    *ci = gamma * xi;
                }
            } else {
                for (ci, &xi) in c.iter_mut().zip(*x) {
                    *ci = beta * *ci + gamma * xi;
                }
            }
        }
        Epilogue::PermutedScatter {
            dims,
            perm,
            factor,
            gamma,
            x,
        } => match x {
            Some(x) => sort_4(x, c, *dims, *perm, factor * gamma),
            None => c.fill(0.0),
        },
    }
}

/// Textbook reference implementation (element addressing only), used as the
/// oracle in property tests.
#[allow(clippy::too_many_arguments)]
pub fn dgemm_naive(
    ta: Trans,
    tb: Trans,
    m: usize,
    n: usize,
    k: usize,
    alpha: f64,
    a: &[f64],
    b: &[f64],
    beta: f64,
    c: &mut [f64],
) {
    let at = |i: usize, l: usize| match ta {
        Trans::N => a[cm(i, l, m)],
        Trans::T => a[cm(l, i, k)],
    };
    let bt = |l: usize, j: usize| match tb {
        Trans::N => b[cm(l, j, k)],
        Trans::T => b[cm(j, l, n)],
    };
    for j in 0..n {
        for i in 0..m {
            let mut acc = 0.0;
            for l in 0..k {
                acc += at(i, l) * bt(l, j);
            }
            c[cm(i, j, m)] = alpha * acc + beta * c[cm(i, j, m)];
        }
    }
}

/// Floating-point operation count of one GEMM (the usual `2*m*n*k`).
pub fn gemm_flops(m: usize, n: usize, k: usize) -> u64 {
    2 * m as u64 * n as u64 * k as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(n: usize) -> Vec<f64> {
        (0..n).map(|i| (i + 1) as f64).collect()
    }

    #[test]
    fn identity_times_matrix() {
        // A = I (2x2), B = [[1,3],[2,4]] column-major.
        let a = vec![1.0, 0.0, 0.0, 1.0];
        let b = vec![1.0, 2.0, 3.0, 4.0];
        let mut c = vec![0.0; 4];
        dgemm(Trans::N, Trans::N, 2, 2, 2, 1.0, &a, &b, 0.0, &mut c);
        assert_eq!(c, b);
    }

    #[test]
    fn known_2x2_product() {
        // A=[[1,3],[2,4]], B=[[5,7],[6,8]] (column-major lists).
        let a = vec![1.0, 2.0, 3.0, 4.0];
        let b = vec![5.0, 6.0, 7.0, 8.0];
        let mut c = vec![0.0; 4];
        dgemm(Trans::N, Trans::N, 2, 2, 2, 1.0, &a, &b, 0.0, &mut c);
        // C = [[1*5+3*6, 1*7+3*8],[2*5+4*6, 2*7+4*8]] = [[23,31],[34,46]]
        assert_eq!(c, vec![23.0, 34.0, 31.0, 46.0]);
    }

    #[test]
    fn transpose_flags_agree_with_naive() {
        let (m, n, k) = (3, 4, 5);
        for &ta in &[Trans::N, Trans::T] {
            for &tb in &[Trans::N, Trans::T] {
                let a = seq(m * k);
                let b = seq(k * n);
                let mut c1 = seq(m * n);
                let mut c2 = c1.clone();
                dgemm(ta, tb, m, n, k, 1.5, &a, &b, 0.5, &mut c1);
                dgemm_naive(ta, tb, m, n, k, 1.5, &a, &b, 0.5, &mut c2);
                for (x, y) in c1.iter().zip(&c2) {
                    assert!((x - y).abs() < 1e-9, "{ta:?}{tb:?}: {x} vs {y}");
                }
            }
        }
    }

    #[test]
    fn tn_block_edges_agree_with_naive() {
        // Sizes straddling the 4x4 block: full blocks, row/column edges,
        // and the k-loop remainder (k % 4 in {0,1,2,3}).
        for &(m, n, k) in &[
            (4, 4, 4),
            (5, 4, 8),
            (4, 7, 9),
            (9, 10, 11),
            (13, 5, 6),
            (3, 3, 3),
            (1, 9, 1),
        ] {
            let a: Vec<f64> = (0..m * k).map(|i| (i as f64 * 0.7).sin()).collect();
            let b: Vec<f64> = (0..k * n).map(|i| (i as f64 * 0.3).cos()).collect();
            let c0: Vec<f64> = (0..m * n).map(|i| i as f64 * 0.01 - 0.2).collect();
            let mut c1 = c0.clone();
            let mut c2 = c0;
            dgemm(Trans::T, Trans::N, m, n, k, 1.25, &a, &b, -0.5, &mut c1);
            dgemm_naive(Trans::T, Trans::N, m, n, k, 1.25, &a, &b, -0.5, &mut c2);
            for (x, y) in c1.iter().zip(&c2) {
                assert!((x - y).abs() < 1e-12, "{m}x{n}x{k}: {x} vs {y}");
            }
        }
    }

    #[test]
    fn beta_zero_overwrites_nan() {
        // beta == 0 must not propagate garbage from C.
        let a = vec![1.0];
        let b = vec![2.0];
        let mut c = vec![f64::NAN];
        dgemm(Trans::N, Trans::N, 1, 1, 1, 1.0, &a, &b, 0.0, &mut c);
        assert_eq!(c[0], 2.0);
    }

    #[test]
    fn alpha_zero_is_scaling_only() {
        let a = vec![1.0];
        let b = vec![2.0];
        let mut c = vec![3.0];
        dgemm(Trans::N, Trans::N, 1, 1, 1, 0.0, &a, &b, 2.0, &mut c);
        assert_eq!(c[0], 6.0);
    }

    #[test]
    fn degenerate_dims() {
        let mut c: Vec<f64> = vec![];
        dgemm(Trans::T, Trans::N, 0, 0, 3, 1.0, &[], &[], 0.0, &mut c);
        // k == 0: product is zero matrix.
        let mut c2 = vec![7.0; 4];
        dgemm(Trans::N, Trans::N, 2, 2, 0, 1.0, &[], &[], 1.0, &mut c2);
        assert_eq!(c2, vec![7.0; 4]);
    }

    #[test]
    fn packed_agrees_with_naive_all_transposes() {
        // Sizes straddling MR=8 / NR=6 micropanels and the custom block
        // edges; every transpose combination.
        let params = GemmParams {
            mc: 16,
            kc: 8,
            nc: 12,
        };
        for &(m, n, k) in &[(1, 1, 1), (8, 6, 8), (9, 7, 9), (17, 13, 11), (32, 24, 16)] {
            let a: Vec<f64> = (0..m * k).map(|i| (i as f64 * 0.7).sin()).collect();
            let b: Vec<f64> = (0..k * n).map(|i| (i as f64 * 0.3).cos()).collect();
            let c0: Vec<f64> = (0..m * n).map(|i| i as f64 * 0.01 - 0.2).collect();
            for &ta in &[Trans::N, Trans::T] {
                for &tb in &[Trans::N, Trans::T] {
                    let mut c1 = c0.clone();
                    let mut c2 = c0.clone();
                    let (mut ap, mut bp) = (Vec::new(), Vec::new());
                    dgemm_packed_with(
                        &params, ta, tb, m, n, k, 1.25, &a, &b, -0.5, &mut c1, &mut ap, &mut bp,
                    );
                    dgemm_naive(ta, tb, m, n, k, 1.25, &a, &b, -0.5, &mut c2);
                    for (x, y) in c1.iter().zip(&c2) {
                        assert!(
                            (x - y).abs() < 1e-12,
                            "{ta:?}{tb:?} {m}x{n}x{k}: {x} vs {y}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn packed_default_params_and_degenerate_dims() {
        // Default blocks far larger than the matrix: single-block path.
        let (m, n, k) = (5, 4, 3);
        let a: Vec<f64> = (0..m * k).map(|i| i as f64 + 0.5).collect();
        let b: Vec<f64> = (0..k * n).map(|i| 2.0 - i as f64 * 0.25).collect();
        let mut c1 = vec![1.0; m * n];
        let mut c2 = vec![1.0; m * n];
        dgemm_packed(Trans::T, Trans::N, m, n, k, 2.0, &a, &b, 1.0, &mut c1);
        dgemm_naive(Trans::T, Trans::N, m, n, k, 2.0, &a, &b, 1.0, &mut c2);
        for (x, y) in c1.iter().zip(&c2) {
            assert!((x - y).abs() < 1e-12);
        }
        // k == 0 leaves only the beta scaling.
        let mut c3 = vec![3.0; 4];
        dgemm_packed(Trans::N, Trans::N, 2, 2, 0, 1.0, &[], &[], 0.5, &mut c3);
        assert_eq!(c3, vec![1.5; 4]);
        // Empty output.
        let mut c4: Vec<f64> = vec![];
        dgemm_packed(Trans::N, Trans::T, 0, 0, 2, 1.0, &[], &[], 0.0, &mut c4);
    }

    #[test]
    fn packed_scratch_is_reused_without_realloc() {
        let params = GemmParams::default();
        let (m, n, k) = (40, 40, 40);
        let a = seq(m * k);
        let b = seq(k * n);
        let mut c = vec![0.0; m * n];
        let mut ap = vec![0.0; params.packed_a_len(m, k)];
        let mut bp = vec![0.0; params.packed_b_len(n, k)];
        let (pa, pb) = (ap.as_ptr(), bp.as_ptr());
        dgemm_packed_with(
            &params,
            Trans::T,
            Trans::N,
            m,
            n,
            k,
            1.0,
            &a,
            &b,
            0.0,
            &mut c,
            &mut ap,
            &mut bp,
        );
        assert_eq!(ap.as_ptr(), pa, "A scratch reallocated");
        assert_eq!(bp.as_ptr(), pb, "B scratch reallocated");
    }

    #[test]
    fn dispatcher_threshold_routes_consistently() {
        // Just below / above the volume threshold both match naive.
        for &(m, n, k) in &[(16, 16, 16), (32, 32, 32)] {
            let a = seq(m * k);
            let b = seq(k * n);
            let mut c1 = vec![0.5; m * n];
            let mut c2 = vec![0.5; m * n];
            dgemm(Trans::T, Trans::N, m, n, k, 1.0, &a, &b, 1.0, &mut c1);
            dgemm_naive(Trans::T, Trans::N, m, n, k, 1.0, &a, &b, 1.0, &mut c2);
            for (x, y) in c1.iter().zip(&c2) {
                let scale = y.abs().max(1.0);
                assert!((x - y).abs() / scale < 1e-12, "{m}: {x} vs {y}");
            }
        }
    }

    #[test]
    fn scale_accumulate_fuses_axpy_into_writeback() {
        let params = GemmParams {
            mc: 16,
            kc: 8,
            nc: 12,
        };
        let (m, n, k) = (17, 13, 19); // multiple kc blocks, clipped edges
        let a: Vec<f64> = (0..m * k).map(|i| (i as f64 * 0.7).sin()).collect();
        let b: Vec<f64> = (0..k * n).map(|i| (i as f64 * 0.3).cos()).collect();
        let x: Vec<f64> = (0..m * n).map(|i| i as f64 * 0.11 - 3.0).collect();
        let c0: Vec<f64> = (0..m * n).map(|i| 0.5 - i as f64 * 0.02).collect();
        for beta in [0.0, 1.0, -0.75] {
            let mut got = c0.clone();
            let (mut ap, mut bp) = (Vec::new(), Vec::new());
            dgemm_packed_epilogue(
                &params,
                Trans::T,
                Trans::N,
                m,
                n,
                k,
                1.25,
                &a,
                &b,
                Epilogue::ScaleAccumulate {
                    beta,
                    gamma: -2.0,
                    x: &x,
                },
                &mut got,
                &mut ap,
                &mut bp,
            );
            let mut want = c0.clone();
            dgemm_naive(Trans::T, Trans::N, m, n, k, 1.25, &a, &b, beta, &mut want);
            for (w, xi) in want.iter_mut().zip(&x) {
                *w += -2.0 * xi;
            }
            for (g, w) in got.iter().zip(&want) {
                assert!((g - w).abs() < 1e-12, "beta={beta}: {g} vs {w}");
            }
        }
        // beta == 0 must not propagate NaN from C.
        let mut c = vec![f64::NAN];
        let (mut ap, mut bp) = (Vec::new(), Vec::new());
        dgemm_packed_epilogue(
            &params,
            Trans::N,
            Trans::N,
            1,
            1,
            1,
            1.0,
            &[3.0],
            &[2.0],
            Epilogue::ScaleAccumulate {
                beta: 0.0,
                gamma: 1.0,
                x: &[4.0],
            },
            &mut c,
            &mut ap,
            &mut bp,
        );
        assert_eq!(c[0], 10.0);
    }

    #[test]
    fn permuted_scatter_fuses_sort_into_writeback() {
        use crate::sort4::sort_4_naive;
        let params = GemmParams {
            mc: 16,
            kc: 8, // will be widened internally to cover k
            nc: 12,
        };
        let dims = [5, 3, 7, 2];
        let (m, n, k) = (dims[0] * dims[1], dims[2] * dims[3], 9);
        let a: Vec<f64> = (0..m * k).map(|i| (i as f64 * 0.7).sin()).collect();
        let b: Vec<f64> = (0..k * n).map(|i| (i as f64 * 0.3).cos()).collect();
        let x: Vec<f64> = (0..m * n).map(|i| i as f64 * 0.09 - 1.0).collect();
        for perm in [[2, 0, 3, 1], [0, 1, 3, 2], [3, 1, 2, 0]] {
            for x_opt in [None, Some(x.as_slice())] {
                let mut got = vec![f64::NAN; m * n]; // fully overwritten
                let (mut ap, mut bp) = (Vec::new(), Vec::new());
                dgemm_packed_epilogue(
                    &params,
                    Trans::T,
                    Trans::N,
                    m,
                    n,
                    k,
                    1.25,
                    &a,
                    &b,
                    Epilogue::PermutedScatter {
                        dims,
                        perm,
                        factor: -0.5,
                        gamma: 3.0,
                        x: x_opt,
                    },
                    &mut got,
                    &mut ap,
                    &mut bp,
                );
                let mut prod = vec![0.0; m * n];
                dgemm_naive(Trans::T, Trans::N, m, n, k, 1.25, &a, &b, 0.0, &mut prod);
                if let Some(x) = x_opt {
                    for (p, xi) in prod.iter_mut().zip(x) {
                        *p += 3.0 * xi;
                    }
                }
                let mut want = vec![0.0; m * n];
                sort_4_naive(&prod, &mut want, dims, perm, -0.5);
                for (g, w) in got.iter().zip(&want) {
                    assert!((g - w).abs() < 1e-12, "perm {perm:?}: {g} vs {w}");
                }
            }
        }
    }

    #[test]
    fn epilogue_params_widens_kc_for_scatter_only() {
        let params = GemmParams {
            mc: 16,
            kc: 8,
            nc: 12,
        };
        let scatter = Epilogue::PermutedScatter {
            dims: [2, 2, 2, 2],
            perm: [1, 0, 2, 3],
            factor: 1.0,
            gamma: 0.0,
            x: None,
        };
        assert_eq!(epilogue_params(&params, &scatter, 40).kc, 40);
        assert_eq!(epilogue_params(&params, &scatter, 4).kc, 8);
        assert_eq!(
            epilogue_params(&params, &Epilogue::Overwrite { beta: 0.0 }, 40).kc,
            8
        );
    }

    #[test]
    fn degenerate_epilogues_keep_their_contracts() {
        // alpha == 0 with ScaleAccumulate still applies beta and the addend.
        let mut c = vec![2.0, 4.0];
        let (mut ap, mut bp) = (Vec::new(), Vec::new());
        dgemm_packed_epilogue(
            &GemmParams::default(),
            Trans::N,
            Trans::N,
            2,
            1,
            1,
            0.0,
            &[1.0, 1.0],
            &[1.0],
            Epilogue::ScaleAccumulate {
                beta: 0.5,
                gamma: 2.0,
                x: &[10.0, 20.0],
            },
            &mut c,
            &mut ap,
            &mut bp,
        );
        assert_eq!(c, vec![21.0, 42.0]);
        // k == 0 with a scatter and an addend degenerates to sort_4 of x.
        let mut c2 = vec![0.0; 4];
        dgemm_packed_epilogue(
            &GemmParams::default(),
            Trans::N,
            Trans::N,
            2,
            2,
            0,
            1.0,
            &[],
            &[],
            Epilogue::PermutedScatter {
                dims: [2, 1, 2, 1],
                perm: [2, 1, 0, 3],
                factor: 2.0,
                gamma: 0.5,
                x: Some(&[1.0, 2.0, 3.0, 4.0]),
            },
            &mut c2,
            &mut ap,
            &mut bp,
        );
        // x as 2x2 [[1,3],[2,4]], transpose then scale by 2*0.5 = 1.
        assert_eq!(c2, vec![1.0, 3.0, 2.0, 4.0]);
        // k == 0 scatter without an addend zeroes the destination.
        let mut c3 = vec![9.0; 4];
        dgemm_packed_epilogue(
            &GemmParams::default(),
            Trans::N,
            Trans::N,
            2,
            2,
            0,
            1.0,
            &[],
            &[],
            Epilogue::PermutedScatter {
                dims: [2, 1, 2, 1],
                perm: [2, 1, 0, 3],
                factor: 1.0,
                gamma: 1.0,
                x: None,
            },
            &mut c3,
            &mut ap,
            &mut bp,
        );
        assert_eq!(c3, vec![0.0; 4]);
    }

    #[test]
    fn trans_from_char() {
        assert_eq!(Trans::from_char('t'), Some(Trans::T));
        assert_eq!(Trans::from_char('N'), Some(Trans::N));
        assert_eq!(Trans::from_char('x'), None);
    }

    #[test]
    fn flop_count() {
        assert_eq!(gemm_flops(10, 20, 30), 12_000);
    }
}
