//! `TCE_SORT_4`: 4-index permutation remap with scale factor.
//!
//! In the original code, after the last GEMM of a chain, up to four guarded
//! `SORT_4` calls remap the chain's output tile `C` into the Global Array's
//! index order (with a permutational-symmetry sign factor) before
//! `ADD_HASH_BLOCK` accumulates it. The paper is explicit that this is a
//! data *remapping*, not a sort.

/// A permutation of the four tensor indices, as in the Fortran call
/// `tce_sort_4(un, srt, d1, d2, d3, d4, p1, p2, p3, p4, factor)`:
/// output index `o` at position `q` equals input index at position
/// `perm[q]`.
pub type Perm4 = [usize; 4];

/// Identity permutation.
pub const IDENT: Perm4 = [0, 1, 2, 3];

/// Validate that `p` is a permutation of `{0,1,2,3}`.
pub fn is_perm(p: &Perm4) -> bool {
    let mut seen = [false; 4];
    for &x in p {
        if x >= 4 || seen[x] {
            return false;
        }
        seen[x] = true;
    }
    true
}

/// Invert a permutation: `invert_perm(p)[p[i]] == i`.
pub fn invert_perm(p: &Perm4) -> Perm4 {
    assert!(is_perm(p), "not a permutation: {p:?}");
    let mut inv = [0; 4];
    for i in 0..4 {
        inv[p[i]] = i;
    }
    inv
}

/// Edge length of one cache tile of the blocked remap: a 32x32 tile of
/// doubles is 8 KiB, so the source and destination tiles together sit in
/// L1 while every touched cache line is fully consumed.
const SORT_TILE: usize = 32;

/// Tiles smaller than this take the linear walk — the whole remap fits
/// in L1 and the blocked loop structure is pure overhead.
const SORT_TILED_MIN: usize = 4096;

/// One branch of a multi-destination remap: the permutation plus the
/// permutational-symmetry sign factor of that branch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SortSpec {
    /// Output index `q` is input index `perm[q]`, as in [`sort_4`].
    pub perm: Perm4,
    /// Sign/scale factor applied to every element of this branch.
    pub factor: f64,
}

/// Whether [`sort_4`] would take the cache-line-per-element strided walk
/// for this remap (the `SORT_STRIDE_FACTOR` cost-model case), as opposed
/// to the blocked path with contiguous writes or the contiguous
/// `perm[0] == 0` walk.
pub fn sort_4_strided(dims: [usize; 4], perm: Perm4) -> bool {
    perm[0] != 0 && dims.iter().product::<usize>() < SORT_TILED_MIN
}

/// Debug-mode guard against aliasing `src`/`dst`: the remap is a full
/// overwrite of `dst` in permuted order and is never correct in place.
/// The fused epilogue paths make accidental in-place calls easy to write,
/// so every entry point checks.
fn assert_no_alias(src: &[f64], dst: &[f64]) {
    if cfg!(debug_assertions) && !src.is_empty() && !dst.is_empty() {
        let (s0, s1) = (src.as_ptr() as usize, src.as_ptr() as usize + src.len() * 8);
        let (d0, d1) = (dst.as_ptr() as usize, dst.as_ptr() as usize + dst.len() * 8);
        assert!(s1 <= d0 || d1 <= s0, "sort_4 src/dst alias");
    }
}

/// Remap `src` (a dense column-major 4-index tile of shape `dims`) into a
/// freshly defined layout where the output's `q`-th index is the input's
/// `perm[q]`-th index, scaling by `factor`. `dst` must have the same total
/// length and is fully overwritten.
///
/// Column-major: input element `(i0,i1,i2,i3)` lives at
/// `i0 + d0*(i1 + d1*(i2 + d2*i3))`.
///
/// Large tiles whose fastest output index is not the fastest input index
/// take a cache-tiled path ([`sort_4_tiled`]) so writes stay contiguous
/// within blocks instead of striding a cache line per element.
pub fn sort_4(src: &[f64], dst: &mut [f64], dims: [usize; 4], perm: Perm4, factor: f64) {
    assert!(is_perm(&perm), "not a permutation: {perm:?}");
    let total = dims.iter().product::<usize>();
    assert_eq!(src.len(), total, "src size mismatch");
    assert_eq!(dst.len(), total, "dst size mismatch");
    assert_no_alias(src, dst);
    if perm[0] != 0 && total >= SORT_TILED_MIN {
        sort_4_blocked(src, dst, dims, perm, factor);
    } else {
        sort_4_linear(src, dst, dims, perm, factor);
    }
}

/// The cache-tiled remap, callable directly (the dispatch in [`sort_4`]
/// picks it automatically for large strided permutations). Falls back to
/// the linear walk when the permutation keeps index 0 in place, since
/// then both walks are already contiguous.
pub fn sort_4_tiled(src: &[f64], dst: &mut [f64], dims: [usize; 4], perm: Perm4, factor: f64) {
    assert!(is_perm(&perm), "not a permutation: {perm:?}");
    let total = dims.iter().product::<usize>();
    assert_eq!(src.len(), total, "src size mismatch");
    assert_eq!(dst.len(), total, "dst size mismatch");
    assert_no_alias(src, dst);
    if perm[0] != 0 {
        sort_4_blocked(src, dst, dims, perm, factor);
    } else {
        sort_4_linear(src, dst, dims, perm, factor);
    }
}

/// Output strides indexed by *input* axis: walking input axis `p`
/// advances the output offset by `step[p]`.
pub(crate) fn out_steps(dims: [usize; 4], perm: Perm4) -> [usize; 4] {
    let odims = [dims[perm[0]], dims[perm[1]], dims[perm[2]], dims[perm[3]]];
    let ostride = [
        1,
        odims[0],
        odims[0] * odims[1],
        odims[0] * odims[1] * odims[2],
    ];
    let inv = invert_perm(&perm);
    [
        ostride[inv[0]],
        ostride[inv[1]],
        ostride[inv[2]],
        ostride[inv[3]],
    ]
}

/// Linear walk: stream the input once; the output is written with stride
/// `step[0]` in the inner loop. Optimal when `perm[0] == 0` (both sides
/// contiguous) or when everything fits in L1.
fn sort_4_linear(src: &[f64], dst: &mut [f64], dims: [usize; 4], perm: Perm4, factor: f64) {
    let step = out_steps(dims, perm);
    let mut src_it = src.iter();
    for i3 in 0..dims[3] {
        for i2 in 0..dims[2] {
            for i1 in 0..dims[1] {
                let base = i1 * step[1] + i2 * step[2] + i3 * step[3];
                for i0 in 0..dims[0] {
                    dst[base + i0 * step[0]] = factor * src_it.next().unwrap();
                }
            }
        }
    }
}

/// Cache-tiled remap for `perm[0] != 0`: the DESIGN.md stride argument
/// (`SORT_STRIDE_FACTOR`) is that the linear walk's inner loop writes one
/// element per destination cache line. Blocking over input axis 0 (source
/// contiguous) and input axis `perm[0]` (destination contiguous — its
/// output stride is 1 by construction) turns the remap into a blocked
/// 2-D transpose: within one `SORT_TILE x SORT_TILE` tile the inner loop
/// writes `dst` with stride 1, and every source line loaded for the tile
/// is fully consumed before eviction.
fn sort_4_blocked(src: &[f64], dst: &mut [f64], dims: [usize; 4], perm: Perm4, factor: f64) {
    let p0 = perm[0];
    debug_assert_ne!(p0, 0);
    let istride = [1, dims[0], dims[0] * dims[1], dims[0] * dims[1] * dims[2]];
    let step = out_steps(dims, perm);
    debug_assert_eq!(step[p0], 1);
    // The two axes that are neither input-fastest nor output-fastest.
    let rest: Vec<usize> = (1..4).filter(|&q| q != p0).collect();
    let (q1, q2) = (rest[0], rest[1]);
    let sp = istride[p0];
    for iq2 in 0..dims[q2] {
        for iq1 in 0..dims[q1] {
            let sbase = iq1 * istride[q1] + iq2 * istride[q2];
            let dbase = iq1 * step[q1] + iq2 * step[q2];
            for jp in (0..dims[p0]).step_by(SORT_TILE) {
                let jpe = (jp + SORT_TILE).min(dims[p0]);
                for j0 in (0..dims[0]).step_by(SORT_TILE) {
                    let j0e = (j0 + SORT_TILE).min(dims[0]);
                    for i0 in j0..j0e {
                        let s = sbase + i0;
                        let drow = &mut dst[dbase + i0 * step[0] + jp..][..jpe - jp];
                        for (ip, d) in (jp..jpe).zip(drow) {
                            *d = factor * src[s + ip * sp];
                        }
                    }
                }
            }
        }
    }
}

/// Where a fan remap sends each branch: its own buffer (`Multi`, full
/// overwrite) or one shared accumulator (`Merge`, `+=`).
enum FanDst<'a, 'b> {
    Multi(&'a mut [&'b mut [f64]]),
    Merge(&'a mut [f64]),
}

/// One cache block of a fan remap for a single branch. Picks the loop
/// order by which side is contiguous: when the branch's output stride
/// along the blocked axis `z` is 1 the inner loop streams `dst`;
/// otherwise the inner loop streams `src` along input axis 0.
#[allow(clippy::too_many_arguments)]
fn fan_block(
    src: &[f64],
    dst: &mut [f64],
    sbase: usize,
    dbase: usize,
    r0: core::ops::Range<usize>,
    rz: core::ops::Range<usize>,
    sz: usize,
    step0: usize,
    stepz: usize,
    factor: f64,
    accumulate: bool,
) {
    if stepz == 1 {
        for i0 in r0 {
            let s = sbase + i0;
            let d = dbase + i0 * step0;
            if accumulate {
                for iz in rz.clone() {
                    dst[d + iz] += factor * src[s + iz * sz];
                }
            } else {
                for iz in rz.clone() {
                    dst[d + iz] = factor * src[s + iz * sz];
                }
            }
        }
    } else {
        for iz in rz {
            let s = sbase + iz * sz;
            let d = dbase + iz * stepz;
            if accumulate {
                for i0 in r0.clone() {
                    dst[d + i0 * step0] += factor * src[s + i0];
                }
            } else {
                for i0 in r0.clone() {
                    dst[d + i0 * step0] = factor * src[s + i0];
                }
            }
        }
    }
}

/// Shared driver for [`sort_4_multi`] / [`sort_4_merge`]: one blocked
/// pass over `src`, fanning each `SORT_TILE`-sided block out to every
/// branch while it is cache-hot. Blocks over input axis 0 and axis `z`
/// (the output-fastest input axis of the first strided branch), so the
/// branch that would pay the worst write stride gets contiguous writes.
fn sort_4_fan(src: &[f64], dims: [usize; 4], specs: &[SortSpec], mut out: FanDst<'_, '_>) {
    let total = dims.iter().product::<usize>();
    assert_eq!(src.len(), total, "src size mismatch");
    for s in specs {
        assert!(is_perm(&s.perm), "not a permutation: {:?}", s.perm);
    }
    match &mut out {
        FanDst::Multi(dsts) => {
            assert_eq!(dsts.len(), specs.len(), "one dst per branch");
            for d in dsts.iter() {
                assert_eq!(d.len(), total, "dst size mismatch");
                assert_no_alias(src, d);
            }
        }
        FanDst::Merge(d) => {
            assert_eq!(d.len(), total, "dst size mismatch");
            assert_no_alias(src, d);
            d.fill(0.0);
        }
    }
    if total == 0 {
        return;
    }
    let z = specs
        .iter()
        .find(|s| s.perm[0] != 0)
        .map(|s| s.perm[0])
        .unwrap_or(1);
    let istride = [1, dims[0], dims[0] * dims[1], dims[0] * dims[1] * dims[2]];
    let steps: Vec<[usize; 4]> = specs.iter().map(|s| out_steps(dims, s.perm)).collect();
    let rest: Vec<usize> = (1..4).filter(|&q| q != z).collect();
    let (q1, q2) = (rest[0], rest[1]);
    let sz = istride[z];
    for iq2 in 0..dims[q2] {
        for iq1 in 0..dims[q1] {
            let sbase = iq1 * istride[q1] + iq2 * istride[q2];
            for jz in (0..dims[z]).step_by(SORT_TILE) {
                let jze = (jz + SORT_TILE).min(dims[z]);
                for j0 in (0..dims[0]).step_by(SORT_TILE) {
                    let j0e = (j0 + SORT_TILE).min(dims[0]);
                    for (k, (spec, step)) in specs.iter().zip(&steps).enumerate() {
                        let (dst, accumulate): (&mut [f64], bool) = match &mut out {
                            FanDst::Multi(ds) => (&mut *ds[k], false),
                            FanDst::Merge(d) => (&mut **d, true),
                        };
                        let dbase = iq1 * step[q1] + iq2 * step[q2];
                        fan_block(
                            src,
                            dst,
                            sbase,
                            dbase,
                            j0..j0e,
                            jz..jze,
                            sz,
                            step[0],
                            step[z],
                            spec.factor,
                            accumulate,
                        );
                    }
                }
            }
        }
    }
}

/// One-pass multi-branch remap: read `src` once per cache block and
/// write every branch's destination while the block is hot, instead of
/// one full (possibly strided) pass over `src` per branch as repeated
/// [`sort_4`] calls would do. Each `dsts[k]` is fully overwritten with
/// branch `k`'s permuted, scaled copy — identical to
/// `sort_4(src, dsts[k], dims, specs[k].perm, specs[k].factor)`.
pub fn sort_4_multi(src: &[f64], dsts: &mut [&mut [f64]], dims: [usize; 4], specs: &[SortSpec]) {
    sort_4_fan(src, dims, specs, FanDst::Multi(dsts));
}

/// One-pass merged remap: like [`sort_4_multi`] but every branch
/// accumulates into the single `dst`, which is zero-filled first. This
/// is the fused form of the serial-sort staging loop
/// (`sort_4` into a temporary + `daxpy` per branch): the temporary tile
/// and its extra round trip disappear. Branch contributions to a given
/// element can arrive in a different order than the staged loop's, so
/// results for three or more branches agree to rounding (1e-12), not
/// bitwise.
pub fn sort_4_merge(src: &[f64], dst: &mut [f64], dims: [usize; 4], specs: &[SortSpec]) {
    sort_4_fan(src, dims, specs, FanDst::Merge(dst));
}

/// Naive reference remap (explicit 4-tuple addressing), the oracle for
/// property tests.
pub fn sort_4_naive(src: &[f64], dst: &mut [f64], dims: [usize; 4], perm: Perm4, factor: f64) {
    assert_no_alias(src, dst);
    let odims = [dims[perm[0]], dims[perm[1]], dims[perm[2]], dims[perm[3]]];
    let iidx = |i: [usize; 4]| i[0] + dims[0] * (i[1] + dims[1] * (i[2] + dims[2] * i[3]));
    let oidx = |o: [usize; 4]| o[0] + odims[0] * (o[1] + odims[1] * (o[2] + odims[2] * o[3]));
    for i3 in 0..dims[3] {
        for i2 in 0..dims[2] {
            for i1 in 0..dims[1] {
                for i0 in 0..dims[0] {
                    let i = [i0, i1, i2, i3];
                    let o = [i[perm[0]], i[perm[1]], i[perm[2]], i[perm[3]]];
                    dst[oidx(o)] = factor * src[iidx(i)];
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_is_scaled_copy() {
        let src: Vec<f64> = (0..24).map(|x| x as f64).collect();
        let mut dst = vec![0.0; 24];
        sort_4(&src, &mut dst, [2, 3, 2, 2], IDENT, 2.0);
        for (i, v) in dst.iter().enumerate() {
            assert_eq!(*v, 2.0 * i as f64);
        }
    }

    #[test]
    fn swap_first_two_indices_is_tile_transpose() {
        // dims (2,3,1,1): treat as a 2x3 matrix; perm [1,0,2,3] transposes.
        let src = vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]; // columns (1,2),(3,4),(5,6)
        let mut dst = vec![0.0; 6];
        sort_4(&src, &mut dst, [2, 3, 1, 1], [1, 0, 2, 3], 1.0);
        // Output is 3x2: rows become columns.
        assert_eq!(dst, vec![1.0, 3.0, 5.0, 2.0, 4.0, 6.0]);
    }

    #[test]
    fn matches_naive_on_all_permutations() {
        let dims = [2, 3, 4, 2];
        let n: usize = dims.iter().product();
        let src: Vec<f64> = (0..n).map(|x| (x as f64).sin()).collect();
        // All 24 permutations.
        let mut perms = Vec::new();
        for a in 0..4usize {
            for b in 0..4 {
                for c in 0..4 {
                    for d in 0..4 {
                        let p = [a, b, c, d];
                        if is_perm(&p) {
                            perms.push(p);
                        }
                    }
                }
            }
        }
        assert_eq!(perms.len(), 24);
        for p in perms {
            let mut d1 = vec![0.0; n];
            let mut d2 = vec![0.0; n];
            sort_4(&src, &mut d1, dims, p, -0.5);
            sort_4_naive(&src, &mut d2, dims, p, -0.5);
            assert_eq!(d1, d2, "perm {p:?}");
        }
    }

    #[test]
    fn blocked_path_matches_naive_above_threshold() {
        // 17*9*5*11 = 8415 elements > SORT_TILED_MIN, odd dims straddle
        // SORT_TILE edges, and every perm with perm[0] != 0 takes the
        // blocked path through the public dispatcher.
        let dims = [17, 9, 5, 11];
        let n: usize = dims.iter().product();
        assert!(n >= SORT_TILED_MIN);
        let src: Vec<f64> = (0..n).map(|x| (x as f64).sin()).collect();
        for a in 0..4usize {
            for b in 0..4 {
                for c in 0..4 {
                    for d in 0..4 {
                        let p = [a, b, c, d];
                        if !is_perm(&p) {
                            continue;
                        }
                        let mut got = vec![0.0; n];
                        let mut want = vec![0.0; n];
                        sort_4_tiled(&src, &mut got, dims, p, -0.5);
                        sort_4_naive(&src, &mut want, dims, p, -0.5);
                        assert_eq!(got, want, "perm {p:?}");
                    }
                }
            }
        }
    }

    #[test]
    fn applying_perm_then_inverse_roundtrips() {
        let dims = [3, 2, 4, 2];
        let n: usize = dims.iter().product();
        let src: Vec<f64> = (0..n).map(|x| x as f64 + 0.25).collect();
        let p: Perm4 = [2, 0, 3, 1];
        let odims = [dims[p[0]], dims[p[1]], dims[p[2]], dims[p[3]]];
        let mut mid = vec![0.0; n];
        let mut back = vec![0.0; n];
        sort_4(&src, &mut mid, dims, p, 1.0);
        sort_4(&mid, &mut back, odims, invert_perm(&p), 1.0);
        assert_eq!(src, back);
    }

    #[test]
    fn invert_perm_property() {
        let p: Perm4 = [3, 1, 0, 2];
        let inv = invert_perm(&p);
        for i in 0..4 {
            assert_eq!(inv[p[i]], i);
        }
    }

    #[test]
    #[should_panic]
    fn rejects_non_permutation() {
        let src = vec![0.0; 16];
        let mut dst = vec![0.0; 16];
        sort_4(&src, &mut dst, [2, 2, 2, 2], [0, 0, 1, 2], 1.0);
    }

    #[test]
    fn strided_predicate_matches_dispatch() {
        // perm[0] == 0 is never strided; large strided perms take the
        // blocked (contiguous-write) path, only small ones stay strided.
        assert!(!sort_4_strided([64, 8, 8, 8], [0, 2, 1, 3]));
        assert!(sort_4_strided([8, 8, 8, 4], [1, 0, 2, 3])); // 2048 < min
        assert!(!sort_4_strided([8, 8, 8, 8], [1, 0, 2, 3])); // 4096 >= min
    }

    #[test]
    fn multi_matches_repeated_sort_4() {
        for dims in [[5, 3, 2, 7], [17, 9, 5, 11]] {
            let n: usize = dims.iter().product();
            let src: Vec<f64> = (0..n).map(|x| (x as f64).cos()).collect();
            let specs = [
                SortSpec {
                    perm: [2, 0, 3, 1],
                    factor: -1.0,
                },
                SortSpec {
                    perm: [0, 1, 3, 2],
                    factor: 0.5,
                },
                SortSpec {
                    perm: [3, 2, 1, 0],
                    factor: 2.0,
                },
            ];
            let mut got: Vec<Vec<f64>> = vec![vec![0.0; n]; specs.len()];
            {
                let mut views: Vec<&mut [f64]> = got.iter_mut().map(|v| v.as_mut_slice()).collect();
                sort_4_multi(&src, &mut views, dims, &specs);
            }
            for (g, s) in got.iter().zip(&specs) {
                let mut want = vec![0.0; n];
                sort_4(&src, &mut want, dims, s.perm, s.factor);
                assert_eq!(*g, want, "dims {dims:?} perm {:?}", s.perm);
            }
        }
    }

    #[test]
    fn merge_matches_staged_sort_plus_axpy() {
        let dims = [6, 5, 4, 3];
        let n: usize = dims.iter().product();
        let src: Vec<f64> = (0..n).map(|x| (x as f64 * 0.37).sin()).collect();
        let specs = [
            SortSpec {
                perm: [1, 0, 2, 3],
                factor: 1.0,
            },
            SortSpec {
                perm: [2, 3, 0, 1],
                factor: -0.25,
            },
        ];
        let mut got = vec![1.0; n]; // pre-existing contents must be discarded
        sort_4_merge(&src, &mut got, dims, &specs);
        let mut want = vec![0.0; n];
        let mut tmp = vec![0.0; n];
        for s in &specs {
            sort_4(&src, &mut tmp, dims, s.perm, s.factor);
            for (w, t) in want.iter_mut().zip(&tmp) {
                *w += t;
            }
        }
        let scale: f64 = want.iter().fold(0.0f64, |m, v| m.max(v.abs())).max(1.0);
        for (g, w) in got.iter().zip(&want) {
            assert!((g - w).abs() <= 1e-12 * scale, "{g} vs {w}");
        }
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "alias")]
    fn rejects_in_place_remap() {
        let mut buf = vec![0.0; 16];
        let p = buf.as_mut_ptr();
        // SAFETY: the overlapping views exist only to exercise the alias
        // guard, which panics before any element is touched.
        let src = unsafe { core::slice::from_raw_parts(p, 16) };
        let dst = unsafe { core::slice::from_raw_parts_mut(p, 16) };
        sort_4(src, dst, [2, 2, 2, 2], [1, 0, 2, 3], 1.0);
    }
}
