//! `TCE_SORT_4`: 4-index permutation remap with scale factor.
//!
//! In the original code, after the last GEMM of a chain, up to four guarded
//! `SORT_4` calls remap the chain's output tile `C` into the Global Array's
//! index order (with a permutational-symmetry sign factor) before
//! `ADD_HASH_BLOCK` accumulates it. The paper is explicit that this is a
//! data *remapping*, not a sort.

/// A permutation of the four tensor indices, as in the Fortran call
/// `tce_sort_4(un, srt, d1, d2, d3, d4, p1, p2, p3, p4, factor)`:
/// output index `o` at position `q` equals input index at position
/// `perm[q]`.
pub type Perm4 = [usize; 4];

/// Identity permutation.
pub const IDENT: Perm4 = [0, 1, 2, 3];

/// Validate that `p` is a permutation of `{0,1,2,3}`.
pub fn is_perm(p: &Perm4) -> bool {
    let mut seen = [false; 4];
    for &x in p {
        if x >= 4 || seen[x] {
            return false;
        }
        seen[x] = true;
    }
    true
}

/// Invert a permutation: `invert_perm(p)[p[i]] == i`.
pub fn invert_perm(p: &Perm4) -> Perm4 {
    assert!(is_perm(p), "not a permutation: {p:?}");
    let mut inv = [0; 4];
    for i in 0..4 {
        inv[p[i]] = i;
    }
    inv
}

/// Edge length of one cache tile of the blocked remap: a 32x32 tile of
/// doubles is 8 KiB, so the source and destination tiles together sit in
/// L1 while every touched cache line is fully consumed.
const SORT_TILE: usize = 32;

/// Tiles smaller than this take the linear walk — the whole remap fits
/// in L1 and the blocked loop structure is pure overhead.
const SORT_TILED_MIN: usize = 4096;

/// Remap `src` (a dense column-major 4-index tile of shape `dims`) into a
/// freshly defined layout where the output's `q`-th index is the input's
/// `perm[q]`-th index, scaling by `factor`. `dst` must have the same total
/// length and is fully overwritten.
///
/// Column-major: input element `(i0,i1,i2,i3)` lives at
/// `i0 + d0*(i1 + d1*(i2 + d2*i3))`.
///
/// Large tiles whose fastest output index is not the fastest input index
/// take a cache-tiled path ([`sort_4_tiled`]) so writes stay contiguous
/// within blocks instead of striding a cache line per element.
pub fn sort_4(src: &[f64], dst: &mut [f64], dims: [usize; 4], perm: Perm4, factor: f64) {
    assert!(is_perm(&perm), "not a permutation: {perm:?}");
    let total = dims.iter().product::<usize>();
    assert_eq!(src.len(), total, "src size mismatch");
    assert_eq!(dst.len(), total, "dst size mismatch");
    if perm[0] != 0 && total >= SORT_TILED_MIN {
        sort_4_blocked(src, dst, dims, perm, factor);
    } else {
        sort_4_linear(src, dst, dims, perm, factor);
    }
}

/// The cache-tiled remap, callable directly (the dispatch in [`sort_4`]
/// picks it automatically for large strided permutations). Falls back to
/// the linear walk when the permutation keeps index 0 in place, since
/// then both walks are already contiguous.
pub fn sort_4_tiled(src: &[f64], dst: &mut [f64], dims: [usize; 4], perm: Perm4, factor: f64) {
    assert!(is_perm(&perm), "not a permutation: {perm:?}");
    let total = dims.iter().product::<usize>();
    assert_eq!(src.len(), total, "src size mismatch");
    assert_eq!(dst.len(), total, "dst size mismatch");
    if perm[0] != 0 {
        sort_4_blocked(src, dst, dims, perm, factor);
    } else {
        sort_4_linear(src, dst, dims, perm, factor);
    }
}

/// Output strides indexed by *input* axis: walking input axis `p`
/// advances the output offset by `step[p]`.
fn out_steps(dims: [usize; 4], perm: Perm4) -> [usize; 4] {
    let odims = [dims[perm[0]], dims[perm[1]], dims[perm[2]], dims[perm[3]]];
    let ostride = [
        1,
        odims[0],
        odims[0] * odims[1],
        odims[0] * odims[1] * odims[2],
    ];
    let inv = invert_perm(&perm);
    [
        ostride[inv[0]],
        ostride[inv[1]],
        ostride[inv[2]],
        ostride[inv[3]],
    ]
}

/// Linear walk: stream the input once; the output is written with stride
/// `step[0]` in the inner loop. Optimal when `perm[0] == 0` (both sides
/// contiguous) or when everything fits in L1.
fn sort_4_linear(src: &[f64], dst: &mut [f64], dims: [usize; 4], perm: Perm4, factor: f64) {
    let step = out_steps(dims, perm);
    let mut src_it = src.iter();
    for i3 in 0..dims[3] {
        for i2 in 0..dims[2] {
            for i1 in 0..dims[1] {
                let base = i1 * step[1] + i2 * step[2] + i3 * step[3];
                for i0 in 0..dims[0] {
                    dst[base + i0 * step[0]] = factor * src_it.next().unwrap();
                }
            }
        }
    }
}

/// Cache-tiled remap for `perm[0] != 0`: the DESIGN.md stride argument
/// (`SORT_STRIDE_FACTOR`) is that the linear walk's inner loop writes one
/// element per destination cache line. Blocking over input axis 0 (source
/// contiguous) and input axis `perm[0]` (destination contiguous — its
/// output stride is 1 by construction) turns the remap into a blocked
/// 2-D transpose: within one `SORT_TILE x SORT_TILE` tile the inner loop
/// writes `dst` with stride 1, and every source line loaded for the tile
/// is fully consumed before eviction.
fn sort_4_blocked(src: &[f64], dst: &mut [f64], dims: [usize; 4], perm: Perm4, factor: f64) {
    let p0 = perm[0];
    debug_assert_ne!(p0, 0);
    let istride = [1, dims[0], dims[0] * dims[1], dims[0] * dims[1] * dims[2]];
    let step = out_steps(dims, perm);
    debug_assert_eq!(step[p0], 1);
    // The two axes that are neither input-fastest nor output-fastest.
    let rest: Vec<usize> = (1..4).filter(|&q| q != p0).collect();
    let (q1, q2) = (rest[0], rest[1]);
    let sp = istride[p0];
    for iq2 in 0..dims[q2] {
        for iq1 in 0..dims[q1] {
            let sbase = iq1 * istride[q1] + iq2 * istride[q2];
            let dbase = iq1 * step[q1] + iq2 * step[q2];
            for jp in (0..dims[p0]).step_by(SORT_TILE) {
                let jpe = (jp + SORT_TILE).min(dims[p0]);
                for j0 in (0..dims[0]).step_by(SORT_TILE) {
                    let j0e = (j0 + SORT_TILE).min(dims[0]);
                    for i0 in j0..j0e {
                        let s = sbase + i0;
                        let drow = &mut dst[dbase + i0 * step[0] + jp..][..jpe - jp];
                        for (ip, d) in (jp..jpe).zip(drow) {
                            *d = factor * src[s + ip * sp];
                        }
                    }
                }
            }
        }
    }
}

/// Naive reference remap (explicit 4-tuple addressing), the oracle for
/// property tests.
pub fn sort_4_naive(src: &[f64], dst: &mut [f64], dims: [usize; 4], perm: Perm4, factor: f64) {
    let odims = [dims[perm[0]], dims[perm[1]], dims[perm[2]], dims[perm[3]]];
    let iidx = |i: [usize; 4]| i[0] + dims[0] * (i[1] + dims[1] * (i[2] + dims[2] * i[3]));
    let oidx = |o: [usize; 4]| o[0] + odims[0] * (o[1] + odims[1] * (o[2] + odims[2] * o[3]));
    for i3 in 0..dims[3] {
        for i2 in 0..dims[2] {
            for i1 in 0..dims[1] {
                for i0 in 0..dims[0] {
                    let i = [i0, i1, i2, i3];
                    let o = [i[perm[0]], i[perm[1]], i[perm[2]], i[perm[3]]];
                    dst[oidx(o)] = factor * src[iidx(i)];
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_is_scaled_copy() {
        let src: Vec<f64> = (0..24).map(|x| x as f64).collect();
        let mut dst = vec![0.0; 24];
        sort_4(&src, &mut dst, [2, 3, 2, 2], IDENT, 2.0);
        for (i, v) in dst.iter().enumerate() {
            assert_eq!(*v, 2.0 * i as f64);
        }
    }

    #[test]
    fn swap_first_two_indices_is_tile_transpose() {
        // dims (2,3,1,1): treat as a 2x3 matrix; perm [1,0,2,3] transposes.
        let src = vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]; // columns (1,2),(3,4),(5,6)
        let mut dst = vec![0.0; 6];
        sort_4(&src, &mut dst, [2, 3, 1, 1], [1, 0, 2, 3], 1.0);
        // Output is 3x2: rows become columns.
        assert_eq!(dst, vec![1.0, 3.0, 5.0, 2.0, 4.0, 6.0]);
    }

    #[test]
    fn matches_naive_on_all_permutations() {
        let dims = [2, 3, 4, 2];
        let n: usize = dims.iter().product();
        let src: Vec<f64> = (0..n).map(|x| (x as f64).sin()).collect();
        // All 24 permutations.
        let mut perms = Vec::new();
        for a in 0..4usize {
            for b in 0..4 {
                for c in 0..4 {
                    for d in 0..4 {
                        let p = [a, b, c, d];
                        if is_perm(&p) {
                            perms.push(p);
                        }
                    }
                }
            }
        }
        assert_eq!(perms.len(), 24);
        for p in perms {
            let mut d1 = vec![0.0; n];
            let mut d2 = vec![0.0; n];
            sort_4(&src, &mut d1, dims, p, -0.5);
            sort_4_naive(&src, &mut d2, dims, p, -0.5);
            assert_eq!(d1, d2, "perm {p:?}");
        }
    }

    #[test]
    fn blocked_path_matches_naive_above_threshold() {
        // 17*9*5*11 = 8415 elements > SORT_TILED_MIN, odd dims straddle
        // SORT_TILE edges, and every perm with perm[0] != 0 takes the
        // blocked path through the public dispatcher.
        let dims = [17, 9, 5, 11];
        let n: usize = dims.iter().product();
        assert!(n >= SORT_TILED_MIN);
        let src: Vec<f64> = (0..n).map(|x| (x as f64).sin()).collect();
        for a in 0..4usize {
            for b in 0..4 {
                for c in 0..4 {
                    for d in 0..4 {
                        let p = [a, b, c, d];
                        if !is_perm(&p) {
                            continue;
                        }
                        let mut got = vec![0.0; n];
                        let mut want = vec![0.0; n];
                        sort_4_tiled(&src, &mut got, dims, p, -0.5);
                        sort_4_naive(&src, &mut want, dims, p, -0.5);
                        assert_eq!(got, want, "perm {p:?}");
                    }
                }
            }
        }
    }

    #[test]
    fn applying_perm_then_inverse_roundtrips() {
        let dims = [3, 2, 4, 2];
        let n: usize = dims.iter().product();
        let src: Vec<f64> = (0..n).map(|x| x as f64 + 0.25).collect();
        let p: Perm4 = [2, 0, 3, 1];
        let odims = [dims[p[0]], dims[p[1]], dims[p[2]], dims[p[3]]];
        let mut mid = vec![0.0; n];
        let mut back = vec![0.0; n];
        sort_4(&src, &mut mid, dims, p, 1.0);
        sort_4(&mid, &mut back, odims, invert_perm(&p), 1.0);
        assert_eq!(src, back);
    }

    #[test]
    fn invert_perm_property() {
        let p: Perm4 = [3, 1, 0, 2];
        let inv = invert_perm(&p);
        for i in 0..4 {
            assert_eq!(inv[p[i]], i);
        }
    }

    #[test]
    #[should_panic]
    fn rejects_non_permutation() {
        let src = vec![0.0; 16];
        let mut dst = vec![0.0; 16];
        sort_4(&src, &mut dst, [2, 2, 2, 2], [0, 0, 1, 2], 1.0);
    }
}
