//! Block-size tuning probe for the packed GEMM engine: prints blocked
//! vs packed GFLOP/s for a few `GemmParams` candidates.

use std::time::Instant;
use tensor_kernels::gemm::{dgemm_blocked, dgemm_packed_with};
use tensor_kernels::{GemmParams, Trans};

fn bench<F: FnMut()>(mut f: F) -> f64 {
    let mut best = f64::MAX;
    for _ in 0..5 {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

fn main() {
    for &d in &[64usize, 128, 256] {
        let (m, n, k) = (d, d, d);
        let a: Vec<f64> = (0..m * k).map(|i| (i as f64).sin()).collect();
        let b: Vec<f64> = (0..k * n).map(|i| (i as f64).cos()).collect();
        let mut c = vec![0.0; m * n];
        let flops = 2.0 * (m * n * k) as f64;
        let tb = bench(|| dgemm_blocked(Trans::T, Trans::N, m, n, k, 1.0, &a, &b, 1.0, &mut c));
        for params in [
            GemmParams::default(),
            GemmParams {
                mc: 64,
                kc: 128,
                nc: 2048,
            },
            GemmParams {
                mc: 96,
                kc: 192,
                nc: 2048,
            },
            GemmParams {
                mc: 256,
                kc: 256,
                nc: 2048,
            },
        ] {
            let mut ap = vec![0.0; params.packed_a_len(m, k)];
            let mut bp = vec![0.0; params.packed_b_len(n, k)];
            let tp = bench(|| {
                dgemm_packed_with(
                    &params,
                    Trans::T,
                    Trans::N,
                    m,
                    n,
                    k,
                    1.0,
                    &a,
                    &b,
                    1.0,
                    &mut c,
                    &mut ap,
                    &mut bp,
                )
            });
            println!(
                "{d:>4}^3 blocked {:6.2} GF/s  packed(mc={},kc={}) {:6.2} GF/s  ratio {:.2}x",
                flops / tb / 1e9,
                params.mc,
                params.kc,
                flops / tp / 1e9,
                tb / tp
            );
        }
    }
}
