//! Checkpoint/restore oracle: random Put/Acc interleavings over a
//! 4-rank loopback mesh, a checkpoint at a random epoch, a simulated
//! crash (every shard scrambled, caches poisoned with the garbage),
//! restore, and a deterministic replay of the tail — the final shards
//! must equal the no-crash model vector, and the restored NXTVAL
//! counter must hand the replayed tail exactly the values the original
//! tail drew. Acc is not idempotent, so this only holds if restore
//! lands on *exactly* the checkpointed epoch and the cache serves none
//! of the pre-crash bytes.

use global_arrays::{Checkpointer, DistStore, Ga, TileCacheConfig};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

const RANKS: usize = 4;
const LEN: usize = 64;

/// A unique scratch directory per test run (no tempdir crate in the
/// workspace); callers best-effort remove it.
fn fresh_dir(tag: &str) -> PathBuf {
    static N: AtomicUsize = AtomicUsize::new(0);
    let d = std::env::temp_dir().join(format!(
        "ga_ckpt_{tag}_{}_{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&d).unwrap();
    d
}

/// Run `f(rank_ga)` on `n` ranks (threads over loopback); results in
/// rank order. Same harness as the cache-coherence suite.
fn run_ranks<T: Send + 'static>(
    n: usize,
    f: impl Fn(Arc<Ga>) -> T + Send + Sync + 'static,
) -> Vec<T> {
    let f = Arc::new(f);
    let handles: Vec<_> = comm::loopback(n)
        .into_iter()
        .enumerate()
        .map(|(rank, t)| {
            let f = f.clone();
            std::thread::spawn(move || {
                let store = DistStore::new(rank, n);
                let cfg = comm::CommConfig {
                    eager_threshold: 256,
                    retry_timeout: Duration::from_millis(20),
                    retry_backoff_max: Duration::from_millis(80),
                    ..comm::CommConfig::default()
                };
                let ep = comm::Endpoint::spawn(Box::new(t), store.clone(), cfg);
                let ga = Arc::new(Ga::init_dist_cfg(
                    ep.clone(),
                    store,
                    TileCacheConfig::default(),
                ));
                let out = f(ga.clone());
                ga.sync();
                ep.shutdown();
                out
            })
        })
        .collect();
    handles.into_iter().map(|h| h.join().unwrap()).collect()
}

/// One mutation round: `writer` applies `op` (0 = Put, 1 = Acc with
/// alpha 1.0) of `val` over `[off, off+len)`; every rank then draws one
/// NXTVAL and checks the post-sync array against the model.
#[derive(Debug, Clone, Copy)]
struct Round {
    writer: usize,
    op: usize,
    off: usize,
    len: usize,
    val: f64,
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn restore_plus_replayed_tail_matches_no_crash_oracle(
        raw in prop::collection::vec(
            (0usize..RANKS, 0usize..2, 0usize..LEN, 1usize..LEN, 1u32..50),
            1..6,
        ),
        ckpt_pick in 0usize..16,
    ) {
        let rounds: Vec<Round> = raw
            .iter()
            .map(|&(writer, op, off_raw, len_raw, val)| {
                let off = off_raw % LEN;
                let len = 1 + len_raw % (LEN - off);
                Round { writer, op, off, len, val: val as f64 }
            })
            .collect();
        // Checkpoint after `k` rounds (possibly 0 = initial state, or
        // all of them = empty tail).
        let k = ckpt_pick % (rounds.len() + 1);
        // Lockstep model: array state after each round.
        let init: Vec<f64> = (0..LEN).map(|x| x as f64).collect();
        let mut model = init.clone();
        let mut states: Vec<Vec<f64>> = Vec::new();
        for r in &rounds {
            for x in &mut model[r.off..r.off + r.len] {
                if r.op == 0 { *x = r.val; } else { *x += r.val; }
            }
            states.push(model.clone());
        }
        let at_k: Vec<f64> = if k == 0 { init.clone() } else { states[k - 1].clone() };
        let fin: Vec<f64> = states.last().cloned().unwrap();
        let dir = fresh_dir("oracle");
        let (rounds, states) = (Arc::new(rounds), Arc::new(states));
        let (init, at_k, fin) = (Arc::new(init), Arc::new(at_k), Arc::new(fin));
        let dir2 = dir.clone();
        let results = run_ranks(RANKS, move |ga| {
            let hh = ga.create(LEN);
            ga.put_collective(hh, 0, &init);
            ga.sync();
            let ep = ga.endpoint().unwrap().clone();
            let ck = Checkpointer::new(&dir2, ga.rank()).unwrap();
            let apply = |i: usize, draws: &mut Vec<i64>| {
                let r = &rounds[i];
                if ga.rank() == r.writer {
                    let data = vec![r.val; r.len];
                    if r.op == 0 { ga.put(hh, r.off, &data); } else { ga.acc(hh, r.off, &data, 1.0); }
                }
                draws.push(ga.nxtval());
                ga.sync();
                assert_eq!(ga.get(hh, 0, LEN), states[i], "round {i} diverged from model");
                // All reads complete before the next round's writer
                // mutates (sync orders writes, not subsequent reads).
                ep.barrier();
            };
            let mut head_draws = Vec::new();
            for i in 0..k {
                apply(i, &mut head_draws);
            }
            // Epoch boundary: everyone quiesced (barrier inside apply,
            // or the post-init sync when k == 0), image on disk before
            // the tail mutates anything.
            ga.checkpoint(&ck, k as u64).unwrap();
            ep.barrier();
            let mut tail1 = Vec::new();
            for i in k..rounds.len() {
                apply(i, &mut tail1);
            }
            assert_eq!(ga.get(hh, 0, LEN), *fin, "no-crash run diverged");
            // Crash: scramble every shard and poison the caches with the
            // garbage, so a missed invalidation on restore is caught.
            ep.barrier();
            ga.put_collective(hh, 0, &vec![-1234.5; LEN]);
            ga.sync();
            assert!(ga.get(hh, 0, LEN).iter().all(|&v| v == -1234.5));
            ep.barrier();
            // Restore and verify the epoch-k cut, then replay the tail.
            let epoch = ga.restore(&ck).unwrap();
            assert_eq!(epoch, k as u64, "restored wrong epoch");
            ep.barrier();
            assert_eq!(ga.get(hh, 0, LEN), *at_k, "restore missed the epoch-k state");
            // Epoch-k reads done before replay mutates.
            ep.barrier();
            let mut tail2 = Vec::new();
            for i in k..rounds.len() {
                apply(i, &mut tail2);
            }
            assert_eq!(ga.get(hh, 0, LEN), *fin, "replayed tail diverged from no-crash oracle");
            (tail1, tail2)
        });
        // The restored NXTVAL counter must hand the replayed tail the
        // same value set the original tail drew (order across ranks is
        // scheduling, the multiset is the contract).
        let mut t1: Vec<i64> = Vec::new();
        let mut t2: Vec<i64> = Vec::new();
        for (a, b) in results {
            t1.extend(a);
            t2.extend(b);
        }
        t1.sort_unstable();
        t2.sort_unstable();
        prop_assert_eq!(t1, t2, "replayed NXTVAL draws diverged");
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Single-rank roundtrip through the spill file: mutate, checkpoint,
/// mutate again, restore — the first state comes back, the allocation
/// cursor survives (so post-restore creates agree with peers), and the
/// counters add up.
#[test]
fn spill_file_roundtrip_restores_shards_and_counter() {
    let dir = fresh_dir("roundtrip");
    let dir2 = dir.clone();
    run_ranks(1, move |ga| {
        let h = ga.create(LEN);
        ga.put(h, 0, &vec![3.25; LEN]);
        for _ in 0..5 {
            ga.nxtval();
        }
        let ck = Checkpointer::new(&dir2, 0).unwrap();
        assert!(!ck.exists());
        let bytes = ga.checkpoint(&ck, 7).unwrap();
        assert!(bytes > (LEN * 8) as u64, "image must contain the shard");
        assert!(ck.exists());
        ga.put(h, 0, &vec![-1.0; LEN]);
        ga.nxtval();
        let epoch = ga.restore(&ck).unwrap();
        assert_eq!(epoch, 7);
        assert_eq!(ga.get(h, 0, LEN), vec![3.25; LEN]);
        assert_eq!(ga.nxtval(), 5, "counter must resume from the image");
        // The cursor came back too: the next create gets the next id.
        let h2 = ga.create(LEN);
        assert_ne!(h, h2);
        assert_eq!((ck.checkpoints(), ck.restores()), (1, 1));
        assert_eq!(ck.bytes_written(), bytes);
        ck.clear().unwrap();
        assert!(!ck.exists());
    });
    let _ = std::fs::remove_dir_all(&dir);
}

/// Images are rank-stamped and integrity-checked: restoring another
/// rank's image or a corrupted file must fail loudly, never serve wrong
/// shards silently.
#[test]
fn wrong_rank_or_corrupt_image_is_rejected() {
    use global_arrays::ckpt::{decode_into, encode};
    let s0 = DistStore::new(0, 2);
    let s1 = DistStore::new(1, 2);
    let img = encode(&s0, 3, 0);
    assert!(decode_into(&s1, &img).unwrap_err().contains("for rank 0"));
    let mut bad = img.clone();
    bad[0] ^= 0xFF;
    assert!(decode_into(&s0, &bad).unwrap_err().contains("magic"));
    let truncated = &img[..img.len() - 4];
    assert!(decode_into(&s0, truncated)
        .unwrap_err()
        .contains("truncated"));
    // The intact image still decodes after the failed attempts.
    assert_eq!(decode_into(&s0, &img).unwrap(), (3, 0));
}
