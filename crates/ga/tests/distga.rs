//! The distributed backend run as real multi-rank executions (ranks as
//! threads over the loopback transport): the full `Ga` API — collective
//! create/materialize, cross-rank get/acc, the shared NXTVAL counter —
//! must behave exactly like the in-process backend, including when the
//! transport underneath injects faults.

use global_arrays::{DistStore, Ga};
use std::sync::Arc;
use std::time::Duration;

/// Run `f(rank_ga)` on `n` ranks (threads) and return their results in
/// rank order. Endpoints shut down after a final sync.
fn run_ranks<T: Send + 'static>(
    n: usize,
    f: impl Fn(Arc<Ga>) -> T + Send + Sync + 'static,
) -> Vec<T> {
    let f = Arc::new(f);
    let transports = comm::loopback(n);
    let handles: Vec<_> = transports
        .into_iter()
        .enumerate()
        .map(|(rank, t)| {
            let f = f.clone();
            std::thread::spawn(move || {
                let store = DistStore::new(rank, n);
                let ep =
                    comm::Endpoint::spawn(Box::new(t), store.clone(), comm::CommConfig::default());
                let ga = Arc::new(Ga::init_dist(ep.clone(), store));
                let out = f(ga.clone());
                ga.sync();
                ep.shutdown();
                out
            })
        })
        .collect();
    handles.into_iter().map(|h| h.join().unwrap()).collect()
}

/// As [`run_ranks`], but over [`comm::FaultTransport`] with a named
/// chaos schedule: the GA semantics must hold anyway. Ranks disarm their
/// injectors after the workload so the final collective teardown cannot
/// lose its own release frames.
fn run_ranks_chaos<T: Send + 'static>(
    n: usize,
    name: &str,
    seed: u64,
    f: impl Fn(Arc<Ga>) -> T + Send + Sync + 'static,
) -> Vec<T> {
    use comm::fault::{FaultPlan, FaultTransport};
    let f = Arc::new(f);
    let handles: Vec<_> = comm::loopback(n)
        .into_iter()
        .enumerate()
        .map(|(rank, t)| {
            let f = f.clone();
            let plan = FaultPlan::named(name, seed.wrapping_add(rank as u64))
                .unwrap_or_else(|| panic!("unknown schedule {name}"));
            let ft = FaultTransport::new(Box::new(t), plan);
            let armed = ft.armed_handle();
            std::thread::spawn(move || {
                let store = DistStore::new(rank, n);
                let cfg = comm::CommConfig {
                    // Tiny arrays: a 64-byte threshold still pushes the
                    // assembly gets through the rendezvous path.
                    eager_threshold: 64,
                    retry_timeout: Duration::from_millis(20),
                    retry_backoff_max: Duration::from_millis(80),
                    ..comm::CommConfig::default()
                };
                let ep = comm::Endpoint::spawn(Box::new(ft), store.clone(), cfg);
                let ga = Arc::new(Ga::init_dist(ep.clone(), store));
                let out = f(ga.clone());
                armed.store(false, std::sync::atomic::Ordering::SeqCst);
                ga.sync();
                ep.shutdown();
                out
            })
        })
        .collect();
    handles.into_iter().map(|h| h.join().unwrap()).collect()
}

#[test]
fn collective_put_then_cross_rank_get() {
    let snaps = run_ranks(3, |ga| {
        assert!(ga.is_dist());
        let h = ga.create(10);
        let data: Vec<f64> = (0..10).map(|x| x as f64).collect();
        // Everyone writes its own piece; after the sync all of it is
        // visible from every rank.
        ga.put_collective(h, 0, &data);
        ga.sync();
        let all = ga.get(h, 0, 10);
        let tail = ga.get(h, 7, 3);
        (all, tail)
    });
    for (all, tail) in snaps {
        assert_eq!(all, (0..10).map(|x| x as f64).collect::<Vec<_>>());
        assert_eq!(tail, vec![7.0, 8.0, 9.0]);
    }
}

#[test]
fn accumulates_from_all_ranks_combine() {
    let sums = run_ranks(4, |ga| {
        let h = ga.create(8);
        // Every rank accumulates 1.0 across the whole array (crossing
        // every shard boundary), so each element ends at 4.0.
        ga.acc(h, 0, &[1.0; 8], 1.0);
        ga.sync();
        ga.snapshot(h)
    });
    for s in sums {
        assert_eq!(s, vec![4.0; 8]);
    }
}

#[test]
fn acc_local_routes_to_owner_rank() {
    let snaps = run_ranks(2, |ga| {
        let h = ga.create(8); // rank 0 owns [0,4), rank 1 owns [4,8)
        if ga.rank() == 0 {
            let data = vec![1.0; 6]; // global [1, 7)
            ga.acc_local(h, 0, 1, &data, 2.0);
            ga.acc_local(h, 1, 1, &data, 2.0);
        }
        ga.sync();
        ga.snapshot(h)
    });
    for s in snaps {
        assert_eq!(s, vec![0.0, 2.0, 2.0, 2.0, 2.0, 2.0, 2.0, 0.0]);
    }
}

#[test]
fn nxtval_is_shared_and_resets_collectively() {
    let draws = run_ranks(3, |ga| {
        let mine: Vec<i64> = (0..5).map(|_| ga.nxtval()).collect();
        ga.nxtval_reset();
        let after = ga.nxtval();
        (mine, after)
    });
    // All 15 pre-reset draws are distinct values of one shared counter.
    let mut all: Vec<i64> = draws.iter().flat_map(|(m, _)| m.clone()).collect();
    all.sort_unstable();
    all.dedup();
    assert_eq!(all.len(), 15);
    assert!(all.iter().all(|&v| (0..15).contains(&v)));
    // Post-reset draws restart from zero (3 ranks draw 0, 1, 2).
    let mut post: Vec<i64> = draws.iter().map(|(_, a)| *a).collect();
    post.sort_unstable();
    assert_eq!(post, vec![0, 1, 2]);
}

#[test]
fn locality_stats_split_by_ownership() {
    let stats = run_ranks(2, |ga| {
        let h = ga.create(8); // 4 elements per rank
        ga.sync();
        if ga.rank() == 0 {
            ga.get(h, 0, 8); // half local, half remote
        }
        ga.sync();
        (ga.stats().local_bytes(), ga.stats().remote_bytes())
    });
    assert_eq!(stats[0], (32, 32));
    assert_eq!(stats[1], (0, 0));
}

#[test]
fn async_get_feeds_callback_with_assembled_range() {
    let got = run_ranks(2, |ga| {
        let h = ga.create(8);
        let fill: Vec<f64> = (0..8).map(|x| x as f64 * 10.0).collect();
        ga.put_collective(h, 0, &fill);
        ga.sync();
        let slot = Arc::new((std::sync::Mutex::new(None), std::sync::Condvar::new()));
        let fillslot = slot.clone();
        // [2, 7) crosses the shard boundary: one local + one remote piece.
        ga.get_async(
            h,
            2,
            5,
            7,
            Box::new(move |data| {
                *fillslot.0.lock().unwrap() = Some(data);
                fillslot.1.notify_all();
            }),
        );
        let (lock, cv) = &*slot;
        let mut got = lock.lock().unwrap();
        loop {
            if let Some(d) = got.take() {
                break d;
            }
            let (g, _) = cv.wait_timeout(got, Duration::from_secs(10)).unwrap();
            got = g;
        }
    });
    for d in got {
        assert_eq!(d, vec![20.0, 30.0, 40.0, 50.0, 60.0]);
    }
}

/// GA semantics survive a misbehaving transport: collective fills,
/// all-rank accumulates, multi-owner assembly gets and the shared
/// counter all land on exactly the fault-free answer under drop,
/// duplicate and reorder schedules.
#[test]
fn ga_semantics_survive_faulty_transport() {
    for (i, name) in ["drop", "duplicate", "reorder"].iter().enumerate() {
        let seed = 0x6A00 + i as u64;
        let replay = format!("ga chaos `{name}` seed {seed}");
        let results = run_ranks_chaos(4, name, seed, |ga| {
            let h = ga.create(16); // 4 elements per rank
            let fill: Vec<f64> = (0..16).map(|x| x as f64 * 10.0).collect();
            ga.put_collective(h, 0, &fill);
            ga.sync();
            // Every rank accumulates across every shard boundary.
            ga.acc(h, 0, &[1.0; 16], 2.0);
            ga.sync();
            // Multi-owner assembly: one get spanning all four shards.
            let all = ga.get(h, 0, 16);
            let draws: Vec<i64> = (0..6).map(|_| ga.nxtval()).collect();
            (all, draws)
        });
        let want: Vec<f64> = (0..16).map(|x| x as f64 * 10.0 + 2.0 * 4.0).collect();
        let mut draws: Vec<i64> = Vec::new();
        for (all, d) in results {
            assert_eq!(all, want, "assembled get diverged: {replay}");
            draws.extend(d);
        }
        draws.sort_unstable();
        assert_eq!(
            draws,
            (0..24).collect::<Vec<i64>>(),
            "NXTVAL handed out a value twice: {replay}"
        );
    }
}
