//! Hot-handoff stress: the shared `DistStore`/`TileCache` pair is owned
//! jointly by N application worker threads (the fused engine's stealing
//! workers) and the comm progress thread (applying remote `Put`/`Acc`
//! active messages against the same shards). These tests hammer exactly
//! that seam:
//!
//! - shard mutations racing local reads must never tear (accumulates of
//!   whole units can only ever be observed as whole units),
//! - the `DistStore::array` condvar wait must absorb a remote request
//!   arriving before this rank's collective `create` call,
//! - cache invalidation driven from the progress thread (incoming `Acc`)
//!   must never let a worker read a verified-stale block once the
//!   mutation has been fenced by a sync.

use global_arrays::{DistStore, Ga, TileCacheConfig};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Run `f(rank_ga, rank)` on `n` ranks (threads) over loopback,
/// returning results in rank order. `verify` arms the cache's
/// verify-reads paranoia mode — valid only for workloads whose reads
/// happen in mutation-quiesced windows (between syncs): a hit taken
/// *while* a remote acc lands legitimately diverges from the fresh
/// re-fetch under GA's relaxed model, and would count as stale.
fn run_ranks<T: Send + 'static>(
    n: usize,
    verify: bool,
    f: impl Fn(Arc<Ga>, usize) -> T + Send + Sync + 'static,
) -> Vec<T> {
    let f = Arc::new(f);
    let handles: Vec<_> = comm::loopback(n)
        .into_iter()
        .enumerate()
        .map(|(rank, t)| {
            let f = f.clone();
            std::thread::spawn(move || {
                let store = DistStore::new(rank, n);
                let ep =
                    comm::Endpoint::spawn(Box::new(t), store.clone(), comm::CommConfig::default());
                let cfg = TileCacheConfig {
                    verify_reads: verify,
                    ..TileCacheConfig::default()
                };
                let ga = Arc::new(Ga::init_dist_cfg(ep.clone(), store, cfg));
                let out = f(ga.clone(), rank);
                ga.sync();
                ep.shutdown();
                out
            })
        })
        .collect();
    handles.into_iter().map(|h| h.join().unwrap()).collect()
}

/// N local worker threads accumulate into the full array (crossing every
/// shard boundary, so each rank's progress thread concurrently applies
/// remote `Acc` frames) while N readers poll. Torn or lost updates would
/// show up as non-integer intermediate reads or a wrong final sum.
/// Verify-reads stays off here: mid-storm hits legally lag the owner
/// (there is no cross-rank invalidation between syncs), so the paranoia
/// re-fetch would flag relaxed-model behavior as staleness.
#[test]
fn acc_storm_from_workers_and_comm_thread_never_tears() {
    const RANKS: usize = 3;
    const WORKERS: usize = 3;
    const ROUNDS: usize = 40;
    const LEN: usize = 64;
    let finals = run_ranks(RANKS, false, |ga, _rank| {
        let h = ga.create(LEN);
        ga.sync();
        let stop = Arc::new(AtomicBool::new(false));
        let readers: Vec<_> = (0..WORKERS)
            .map(|w| {
                let ga = ga.clone();
                let stop = stop.clone();
                std::thread::spawn(move || {
                    let mut polls = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        let off = (w * 17) % (LEN / 2);
                        for v in ga.get(h, off, LEN / 2) {
                            // Every accumulate adds exactly 1.0, so any
                            // observable value is a whole count within
                            // the global total — a torn 8-byte f64 or a
                            // partially-applied frame breaks this.
                            assert_eq!(v.fract(), 0.0, "torn read: {v}");
                            assert!(
                                (0.0..=(RANKS * WORKERS * ROUNDS) as f64).contains(&v),
                                "out-of-range read: {v}"
                            );
                        }
                        polls += 1;
                    }
                    polls
                })
            })
            .collect();
        let writers: Vec<_> = (0..WORKERS)
            .map(|_| {
                let ga = ga.clone();
                std::thread::spawn(move || {
                    for _ in 0..ROUNDS {
                        ga.acc(h, 0, &[1.0; LEN], 1.0);
                    }
                })
            })
            .collect();
        for w in writers {
            w.join().unwrap();
        }
        ga.sync();
        stop.store(true, Ordering::Relaxed);
        let polls: u64 = readers.into_iter().map(|r| r.join().unwrap()).sum();
        assert!(polls > 0, "readers never ran");
        ga.snapshot(h)
    });
    let expect = (RANKS * WORKERS * ROUNDS) as f64;
    for snap in finals {
        assert_eq!(snap, vec![expect; LEN], "lost or duplicated accumulate");
    }
}

/// A remote `Get` reaching a rank before its own collective `create` has
/// run must park on the `DistStore::array` condvar (the request proves
/// the create is coming), not index past the array table or panic the
/// progress thread.
#[test]
fn remote_request_before_local_create_waits_for_it() {
    let outs = run_ranks(2, true, |ga, rank| {
        if rank == 1 {
            // Rank 0 creates immediately and gets rank 1's half while
            // rank 1 is still asleep; its progress thread must hold the
            // Get until the create below lands.
            std::thread::sleep(std::time::Duration::from_millis(150));
        }
        let h = ga.create(16);
        let other_half = ga.get(h, if rank == 0 { 8 } else { 0 }, 8);
        ga.sync();
        other_half
    });
    for half in outs {
        assert_eq!(half, vec![0.0; 8], "fresh array must read as zeros");
    }
}

/// One rank repeatedly re-reads a block it cached while the other ranks
/// mutate it through `Put`/`Acc` between syncs: every invalidation runs
/// on the reader's *progress thread* while its workers sit in `get`, and
/// verify-reads asserts no hit ever returned pre-invalidation bytes.
#[test]
fn progress_thread_invalidation_races_cached_reads() {
    const RANKS: usize = 2;
    const ROUNDS: usize = 30;
    let outs = run_ranks(RANKS, true, |ga, rank| {
        let h = ga.create(32);
        ga.sync();
        for round in 0..ROUNDS {
            if rank == 1 {
                ga.acc(h, 0, &[1.0; 32], 1.0);
            }
            ga.sync();
            let want = (round + 1) as f64;
            // Re-read twice: the second is a cache hit unless the next
            // round's acc already invalidated it — either way the value
            // must be this round's, and verify-reads cross-checks every
            // hit against a fresh owner fetch.
            assert_eq!(ga.get(h, 0, 32), vec![want; 32]);
            assert_eq!(ga.get(h, 0, 32), vec![want; 32]);
            ga.sync();
        }
        (ga.stats().cache_hits(), ga.stats().stale_reads())
    });
    let hits: u64 = outs.iter().map(|(h, _)| h).sum();
    assert!(hits > 0, "the re-read loop must actually hit the cache");
    for (_, stale) in outs {
        assert_eq!(stale, 0, "stale block served across an invalidation");
    }
}
