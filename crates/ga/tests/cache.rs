//! Cache-coherence suite for the distributed read path: random
//! `Get`/`Put`/`Acc` interleavings on shared arrays across 4 loopback
//! ranks must never observe a value that differs from the uncached
//! oracle (a lockstep-updated model vector), and the deterministic
//! tests pin the two invalidation edges individually — read-your-writes
//! after a local mutation, and incoming-AM invalidation when a peer
//! mutates a block this rank has cached.

use global_arrays::{DistStore, Ga, TileCacheConfig};
use proptest::prelude::*;
use std::sync::Arc;
use std::time::Duration;

const RANKS: usize = 4;
const LEN: usize = 64;

/// Run `f(rank_ga)` on `n` ranks (threads over loopback) with an
/// explicit cache config; results in rank order.
fn run_ranks_cfg<T: Send + 'static>(
    n: usize,
    cache_cfg: TileCacheConfig,
    f: impl Fn(Arc<Ga>) -> T + Send + Sync + 'static,
) -> Vec<T> {
    let f = Arc::new(f);
    let handles: Vec<_> = comm::loopback(n)
        .into_iter()
        .enumerate()
        .map(|(rank, t)| {
            let f = f.clone();
            let cache_cfg = cache_cfg.clone();
            std::thread::spawn(move || {
                let store = DistStore::new(rank, n);
                let cfg = comm::CommConfig {
                    // Small enough that assembly gets also cross the
                    // rendezvous path on full-array reads.
                    eager_threshold: 256,
                    retry_timeout: Duration::from_millis(20),
                    retry_backoff_max: Duration::from_millis(80),
                    ..comm::CommConfig::default()
                };
                let ep = comm::Endpoint::spawn(Box::new(t), store.clone(), cfg);
                let ga = Arc::new(Ga::init_dist_cfg(ep.clone(), store, cache_cfg));
                let out = f(ga.clone());
                ga.sync();
                ep.shutdown();
                out
            })
        })
        .collect();
    handles.into_iter().map(|h| h.join().unwrap()).collect()
}

fn verify_cfg() -> TileCacheConfig {
    TileCacheConfig {
        verify_reads: true,
        ..TileCacheConfig::default()
    }
}

/// One mutation round of the lockstep program: `writer` applies `op`
/// over `[off, off+len)` with integer value `val`; everyone reads
/// `[r_off, r_off+r_len)` just before, and the whole array just after
/// the sync.
#[derive(Debug, Clone, Copy)]
struct Round {
    writer: usize,
    /// 0 = Put, 1 = Acc (alpha 1.0).
    op: usize,
    off: usize,
    len: usize,
    val: f64,
    r_off: usize,
    r_len: usize,
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The tentpole coherence property: under random Put/Acc/Get
    /// interleavings — with `verify_reads` double-checking every hit
    /// against a fresh owner fetch — no rank ever reads a value that
    /// disagrees with the uncached oracle, and no verified hit is stale.
    #[test]
    fn cached_reads_never_observe_stale_values(
        raw in prop::collection::vec(
            (0usize..RANKS, 0usize..2, 0usize..LEN, 1usize..LEN, 1u32..50, (0usize..LEN, 1usize..LEN)),
            1..5,
        ),
    ) {
        let rounds: Vec<Round> = raw
            .iter()
            .map(|&(writer, op, off_raw, len_raw, val, (ro_raw, rl_raw))| {
                let off = off_raw % LEN;
                let len = 1 + len_raw % (LEN - off);
                let r_off = ro_raw % LEN;
                let r_len = 1 + rl_raw % (LEN - r_off);
                Round { writer, op, off, len, val: val as f64, r_off, r_len }
            })
            .collect();
        // The uncached oracle: the model state after each round.
        let init: Vec<f64> = (0..LEN).map(|x| x as f64).collect();
        let mut model = init.clone();
        let mut states: Vec<Vec<f64>> = Vec::new();
        for r in &rounds {
            for x in &mut model[r.off..r.off + r.len] {
                if r.op == 0 {
                    *x = r.val;
                } else {
                    *x += r.val;
                }
            }
            states.push(model.clone());
        }
        let rounds = Arc::new(rounds);
        let states = Arc::new(states);
        let init = Arc::new(init);
        let results = run_ranks_cfg(RANKS, verify_cfg(), move |ga| {
            let h = ga.create(LEN);
            ga.put_collective(h, 0, &init);
            ga.sync();
            let ep = ga.endpoint().unwrap().clone();
            let mut prev: Vec<f64> = init.to_vec();
            for (i, r) in rounds.iter().enumerate() {
                // Pre-mutation read: the previous round's state, whether
                // it comes from cache or the wire.
                let before = ga.get(h, r.r_off, r.r_len);
                assert_eq!(
                    before,
                    &prev[r.r_off..r.r_off + r.r_len],
                    "round {i}: pre-mutation read diverged on rank {}",
                    ga.rank()
                );
                // All pre-reads complete before the writer mutates.
                ep.barrier();
                if ga.rank() == r.writer {
                    let data = vec![r.val; r.len];
                    if r.op == 0 {
                        ga.put(h, r.off, &data);
                        // Read-your-writes with no sync: puts are
                        // blocking and invalidate the writer's cache, so
                        // the writer re-reads its own value immediately.
                        assert_eq!(
                            ga.get(h, r.off, r.len),
                            data,
                            "round {i}: writer failed to read its own put"
                        );
                    } else {
                        ga.acc(h, r.off, &data, 1.0);
                    }
                }
                ga.sync();
                let after = ga.get(h, 0, LEN);
                assert_eq!(after, states[i], "round {i}: post-sync read diverged");
                // Immediate repeat: a cache hit that must agree (and is
                // verified against a fresh fetch by `verify_reads`).
                assert_eq!(ga.get(h, 0, LEN), states[i], "round {i}: cached re-read diverged");
                prev = states[i].clone();
            }
            let gs = ga.stats();
            (gs.cache_hits(), gs.stale_reads())
        });
        for (rank, (hits, stale)) in results.into_iter().enumerate() {
            prop_assert_eq!(stale, 0, "rank {} observed verified-stale cached reads", rank);
            // Every rank re-read the full array right after reading it,
            // and that block always has remote pieces — so hits accrue.
            prop_assert!(hits > 0, "rank {} never exercised the cache", rank);
        }
    }
}

/// A peer's put into a region this rank has cached must invalidate the
/// cached block as the AM is applied — the next read sees the new value
/// with *no* sync on the reader's side.
#[test]
fn incoming_put_invalidates_cached_block() {
    let results = run_ranks_cfg(2, TileCacheConfig::default(), |ga| {
        let h = ga.create(32); // rank 0 owns [0,16), rank 1 owns [16,32)
        let fill: Vec<f64> = (0..32).map(|x| x as f64).collect();
        ga.put_collective(h, 0, &fill);
        ga.sync();
        let ep = ga.endpoint().unwrap().clone();
        if ga.rank() == 0 {
            // Cache [12, 20): local piece [12,16) + remote piece [16,20).
            let first = ga.get(h, 12, 8);
            assert_eq!(first, &fill[12..20]);
            ep.barrier();
            // Rank 1 overwrites index 14 (inside our shard) — blocking,
            // so by its next barrier the AM has been applied here and
            // invalidated our cached block.
            ep.barrier();
            let second = ga.get(h, 12, 8);
            let gs = ga.stats();
            Some((second, gs.cache_invalidations(), gs.cache_misses()))
        } else {
            ep.barrier();
            ga.put(h, 14, &[99.0]);
            ep.barrier();
            None
        }
    });
    let (second, invalidations, misses) = results[0].clone().expect("rank 0 result");
    let want = vec![12.0, 13.0, 99.0, 15.0, 16.0, 17.0, 18.0, 19.0];
    assert_eq!(
        second, want,
        "read after incoming put must see the new value"
    );
    assert!(
        invalidations >= 1,
        "incoming put must invalidate the cached block"
    );
    assert_eq!(
        misses, 2,
        "the invalidated block must be refetched, not served"
    );
}

/// Repeats of the same remote read are served locally: no new wire
/// bytes, hits counted, and bytes attributed to the local side.
#[test]
fn repeated_remote_reads_hit_the_cache() {
    let results = run_ranks_cfg(2, TileCacheConfig::default(), |ga| {
        let h = ga.create(32);
        let fill: Vec<f64> = (0..32).map(|x| (x * 3) as f64).collect();
        ga.put_collective(h, 0, &fill);
        ga.sync();
        let a = ga.get(h, 0, 32);
        let wire_after_first = ga.stats().remote_get_bytes();
        let b = ga.get(h, 0, 32);
        let c = ga.get(h, 0, 32);
        assert_eq!(a, fill);
        assert_eq!(b, fill);
        assert_eq!(c, fill);
        let gs = ga.stats();
        (
            wire_after_first,
            gs.remote_get_bytes(),
            gs.cache_hits(),
            gs.cache_hit_bytes(),
        )
    });
    for (rank, (first, after, hits, hit_bytes)) in results.into_iter().enumerate() {
        assert_eq!(
            first, after,
            "rank {rank}: cached re-reads must move zero new wire bytes"
        );
        assert_eq!(hits, 2, "rank {rank}: both re-reads must hit");
        assert_eq!(hit_bytes, 2 * 32 * 8, "rank {rank}: hit bytes accounted");
    }
}

/// `enabled: false` reproduces the uncached PR-5 read path exactly:
/// correct values, zero cache traffic counted.
#[test]
fn disabled_cache_is_fully_transparent() {
    let cfg = TileCacheConfig {
        enabled: false,
        ..TileCacheConfig::default()
    };
    let results = run_ranks_cfg(2, cfg, |ga| {
        let h = ga.create(32);
        let fill: Vec<f64> = (0..32).map(|x| x as f64 + 0.5).collect();
        ga.put_collective(h, 0, &fill);
        ga.sync();
        assert_eq!(ga.get(h, 0, 32), fill);
        assert_eq!(ga.get(h, 0, 32), fill);
        let gs = ga.stats();
        (gs.cache_hits(), gs.cache_misses(), gs.remote_get_bytes())
    });
    for (hits, misses, wire) in results {
        assert_eq!((hits, misses), (0, 0), "disabled cache must count nothing");
        assert_eq!(wire, 2 * 16 * 8, "both reads pay full remote traffic");
    }
}

/// `sync` is the visibility boundary of GA's relaxed model: a
/// third-party mutation (to a shard this rank does not own) becomes
/// visible at the next sync because the whole cache flushes there.
#[test]
fn sync_flushes_cached_third_party_blocks() {
    let results = run_ranks_cfg(2, TileCacheConfig::default(), |ga| {
        let h = ga.create(32);
        ga.put_collective(h, 0, &vec![1.0; 32]);
        ga.sync();
        if ga.rank() == 0 {
            // Cache rank 1's half.
            assert_eq!(ga.get(h, 16, 16), vec![1.0; 16]);
        }
        ga.sync();
        if ga.rank() == 1 {
            // Mutate our own shard locally; rank 0 has it cached.
            ga.put(h, 20, &[7.0; 4]);
        }
        ga.sync();
        if ga.rank() == 0 {
            let after = ga.get(h, 16, 16);
            let mut want = vec![1.0; 16];
            want[4..8].fill(7.0);
            assert_eq!(after, want, "post-sync read must see third-party put");
        }
        ga.stats().stale_reads()
    });
    for stale in results {
        assert_eq!(stale, 0);
    }
}
