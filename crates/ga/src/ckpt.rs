//! Epoch-aligned checkpoint/restore of the rank-local shard store.
//!
//! Each rank periodically spills a consistent image of its
//! [`DistStore`] — every live shard, the per-namespace allocation
//! cursors, the destroyed-id tombstones — plus this rank's NXTVAL
//! counter shard and the caller's epoch number, to a per-rank file
//! under a spill directory. The write is atomic (temp file + rename),
//! so a crash mid-checkpoint leaves the previous image intact.
//!
//! What is *not* checkpointed: barrier epochs (a restarted rank's
//! pending barriers are poison-released by the failure detector and
//! re-entered by the replayed work) and the tile cache (dropped on
//! restore; it refills from the restored shards). Consistency is the
//! caller's job: checkpoint at an epoch boundary — after `fence` +
//! `barrier` — so no in-flight remote write races the state copy.
//!
//! Restore replaces the whole store state and invalidates every cached
//! block of both old and restored arrays, then hands back the epoch and
//! NXTVAL value so the caller can resume (or replay from) that epoch.
//!
//! The format is a versioned little-endian byte stream, hand-rolled
//! like the wire codec — the workspace vendors no serde.

use crate::distga::{DistStore, StoreSnapshot};
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Format magic + version; bump on layout change.
const MAGIC: &[u8; 8] = b"GACKPT01";

// ---- byte stream helpers ----------------------------------------------

struct W(Vec<u8>);

impl W {
    fn u64(&mut self, v: u64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn i64(&mut self, v: i64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn f64s(&mut self, vs: &[f64]) {
        self.0.reserve(vs.len() * 8);
        for v in vs {
            self.0.extend_from_slice(&v.to_bits().to_le_bytes());
        }
    }
}

struct R<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> R<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        if self.pos + n > self.buf.len() {
            return Err(format!(
                "checkpoint truncated at byte {} (need {n} more of {})",
                self.pos,
                self.buf.len()
            ));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
    fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn i64(&mut self) -> Result<i64, String> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn f64s(&mut self, n: usize) -> Result<Vec<f64>, String> {
        let raw = self.take(n * 8)?;
        Ok(raw
            .chunks_exact(8)
            .map(|c| f64::from_bits(u64::from_le_bytes(c.try_into().unwrap())))
            .collect())
    }
}

// ---- image encode / decode --------------------------------------------

/// Serialize a consistent image of `store` (see module docs for the
/// layout), stamped with the caller's `epoch` and this rank's NXTVAL
/// counter value.
pub fn encode(store: &DistStore, epoch: u64, nxtval: i64) -> Vec<u8> {
    let snap = store.snapshot_state();
    let mut w = W(Vec::new());
    w.0.extend_from_slice(MAGIC);
    w.u64(store.rank() as u64);
    w.u64(epoch);
    w.i64(nxtval);
    w.u64(snap.next_idx.len() as u64);
    for (tag, next) in &snap.next_idx {
        w.u64(*tag as u64);
        w.u64(*next as u64);
    }
    w.u64(snap.destroyed.len() as u64);
    for id in &snap.destroyed {
        w.u64(*id as u64);
    }
    w.u64(snap.arrays.len() as u64);
    for (id, len, nodes, base, shard) in &snap.arrays {
        w.u64(*id as u64);
        w.u64(*len as u64);
        w.u64(*nodes as u64);
        w.u64(*base as u64);
        w.u64(shard.len() as u64);
        w.f64s(shard);
    }
    w.0
}

/// Decode `bytes` and replace `store`'s entire state with the image.
/// Returns `(epoch, nxtval)`. The image must have been written by the
/// same rank (shards are rank-local; restoring another rank's image
/// would serve wrong data silently).
pub fn decode_into(store: &DistStore, bytes: &[u8]) -> Result<(u64, i64), String> {
    let mut r = R { buf: bytes, pos: 0 };
    if r.take(8)? != MAGIC {
        return Err("not a shard checkpoint (bad magic)".into());
    }
    let rank = r.u64()? as usize;
    if rank != store.rank() {
        return Err(format!(
            "checkpoint is for rank {rank}, store is rank {}",
            store.rank()
        ));
    }
    let epoch = r.u64()?;
    let nxtval = r.i64()?;
    let n_tags = r.u64()? as usize;
    let mut next_idx = Vec::with_capacity(n_tags);
    for _ in 0..n_tags {
        next_idx.push((r.u64()? as u32, r.u64()? as u32));
    }
    let n_dead = r.u64()? as usize;
    let mut destroyed = Vec::with_capacity(n_dead);
    for _ in 0..n_dead {
        destroyed.push(r.u64()? as u32);
    }
    let n_arrays = r.u64()? as usize;
    let mut arrays = Vec::with_capacity(n_arrays);
    for _ in 0..n_arrays {
        let id = r.u64()? as u32;
        let len = r.u64()? as usize;
        let nodes = r.u64()? as usize;
        let base = r.u64()? as usize;
        let shard_len = r.u64()? as usize;
        let shard = r.f64s(shard_len)?;
        arrays.push((id, len, nodes, base, shard));
    }
    if r.pos != bytes.len() {
        return Err(format!("{} trailing bytes", bytes.len() - r.pos));
    }
    store.replace_state(StoreSnapshot {
        arrays,
        next_idx,
        destroyed,
    });
    Ok((epoch, nxtval))
}

// ---- spill-path writer -------------------------------------------------

/// Per-rank checkpoint writer over a spill directory, with counters the
/// recovery benchmarks export (`checkpoint_bytes` in
/// `BENCH_service.json`).
pub struct Checkpointer {
    dir: PathBuf,
    rank: usize,
    checkpoints: AtomicU64,
    restores: AtomicU64,
    bytes_written: AtomicU64,
}

impl Checkpointer {
    /// Create (if needed) the spill directory and a writer for `rank`.
    pub fn new(dir: impl Into<PathBuf>, rank: usize) -> io::Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(Self {
            dir,
            rank,
            checkpoints: AtomicU64::new(0),
            restores: AtomicU64::new(0),
            bytes_written: AtomicU64::new(0),
        })
    }

    /// The rank's checkpoint file.
    pub fn path(&self) -> PathBuf {
        self.dir.join(format!("shard_rank{}.ckpt", self.rank))
    }

    /// Spill a consistent image of `store` at `epoch`, atomically
    /// (temp + rename). Returns the image size in bytes.
    pub fn save(&self, store: &DistStore, epoch: u64, nxtval: i64) -> io::Result<u64> {
        let bytes = encode(store, epoch, nxtval);
        let tmp = self.dir.join(format!(".shard_rank{}.ckpt.tmp", self.rank));
        std::fs::write(&tmp, &bytes)?;
        std::fs::rename(&tmp, self.path())?;
        self.checkpoints.fetch_add(1, Ordering::Relaxed);
        self.bytes_written
            .fetch_add(bytes.len() as u64, Ordering::Relaxed);
        Ok(bytes.len() as u64)
    }

    /// Restore `store` from the rank's spill file; returns
    /// `(epoch, nxtval)` of the image.
    pub fn load(&self, store: &DistStore) -> io::Result<(u64, i64)> {
        let bytes = std::fs::read(self.path())?;
        let out = decode_into(store, &bytes).map_err(io::Error::other)?;
        self.restores.fetch_add(1, Ordering::Relaxed);
        Ok(out)
    }

    /// True when a spilled image exists for this rank.
    pub fn exists(&self) -> bool {
        self.path().exists()
    }

    /// Remove the rank's spill file (fresh runs must not restore a
    /// previous run's image).
    pub fn clear(&self) -> io::Result<()> {
        match std::fs::remove_file(self.path()) {
            Err(e) if e.kind() != io::ErrorKind::NotFound => Err(e),
            _ => Ok(()),
        }
    }

    /// The spill directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Checkpoints written.
    pub fn checkpoints(&self) -> u64 {
        self.checkpoints.load(Ordering::Relaxed)
    }

    /// Restores performed.
    pub fn restores(&self) -> u64 {
        self.restores.load(Ordering::Relaxed)
    }

    /// Total image bytes written.
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written.load(Ordering::Relaxed)
    }
}
