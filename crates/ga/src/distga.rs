//! The distributed backend: rank-local shards served over the comm layer.
//!
//! In distributed mode each process holds only its own slice of every
//! array (a [`DistStore`]), and the comm progress engine answers remote
//! `Get`/`Put`/`Acc`/`NxtVal` active messages against it — the real shape
//! of GA's data server. [`crate::Ga`] methods split every range by owner:
//! local pieces short-circuit to memcpy, remote pieces go on the wire.

use crate::cache::TileCache;
use crate::dist::Distribution;
use crate::GaGetCallback;
use comm::{Endpoint, ShardStore, WireSlice};
use parking_lot::{Condvar as PlCondvar, Mutex};
use std::sync::{Arc, Condvar, Mutex as StdMutex, OnceLock};

struct DistArray {
    dist: Distribution,
    /// This rank's owned slice, indexed by `global - range_of(rank).start`.
    shard: Mutex<Vec<f64>>,
}

/// Rank-local shards of every created array. The comm progress engine
/// holds one reference (to serve remote requests) and the owning
/// [`crate::Ga`] another (for local fast paths).
pub struct DistStore {
    rank: usize,
    nranks: usize,
    arrays: Mutex<Vec<Arc<DistArray>>>,
    created: PlCondvar,
    /// The owning `Ga`'s tile cache, attached at `init_dist_cfg`. Every
    /// shard mutation — the local fast paths *and* incoming `Put`/`Acc`
    /// active messages, which the progress engine applies through the
    /// same methods — invalidates overlapping cached blocks here.
    cache: OnceLock<Arc<TileCache>>,
}

impl DistStore {
    /// Empty store for `rank` of `nranks`.
    pub fn new(rank: usize, nranks: usize) -> Arc<Self> {
        assert!(rank < nranks, "rank {rank} out of range for {nranks}");
        Arc::new(Self {
            rank,
            nranks,
            arrays: Mutex::new(Vec::new()),
            created: PlCondvar::new(),
            cache: OnceLock::new(),
        })
    }

    pub(crate) fn attach_cache(&self, cache: Arc<TileCache>) {
        let _ = self.cache.set(cache);
    }

    /// This store's rank.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Allocate the local shard of a `len`-element array; returns its
    /// index. Collective by convention: every rank creates the same
    /// arrays in the same order.
    pub(crate) fn create(&self, len: usize) -> usize {
        let dist = Distribution::new(len, self.nranks);
        let shard = Mutex::new(vec![0.0; dist.range_of(self.rank).len()]);
        let mut arrays = self.arrays.lock();
        arrays.push(Arc::new(DistArray { dist, shard }));
        self.created.notify_all();
        arrays.len() - 1
    }

    fn array(&self, h: usize) -> Arc<DistArray> {
        let mut arrays = self.arrays.lock();
        // Creates are collective by convention but not synchronized: a
        // remote request can reach the progress thread before this
        // rank's application thread has made the matching `create`.
        // The request itself proves the create is coming, so wait for
        // it rather than indexing past the end.
        while arrays.len() <= h {
            if self
                .created
                .wait_for(&mut arrays, std::time::Duration::from_secs(30))
                .timed_out()
            {
                panic!(
                    "array {h} never created on rank {} ({} exist)",
                    self.rank,
                    arrays.len()
                );
            }
        }
        arrays[h].clone()
    }

    pub(crate) fn dist_of(&self, h: usize) -> Distribution {
        self.array(h).dist.clone()
    }

    /// Copy the locally-owned global range `[offset, offset+out.len())`
    /// into `out`. The range must lie inside this rank's shard.
    pub(crate) fn read_local(&self, h: usize, offset: usize, out: &mut [f64]) {
        let a = self.array(h);
        let s = a.dist.range_of(self.rank).start;
        out.copy_from_slice(&a.shard.lock()[offset - s..offset - s + out.len()]);
    }

    pub(crate) fn write_local(&self, h: usize, offset: usize, data: &[f64]) {
        let a = self.array(h);
        let s = a.dist.range_of(self.rank).start;
        a.shard.lock()[offset - s..offset - s + data.len()].copy_from_slice(data);
        // Invalidate *after* the shard holds the new value: a concurrent
        // reader either hits the doomed entry (pre-write value, allowed
        // before the write completes) or refetches post-write data —
        // never caches stale data past the mutation.
        if let Some(c) = self.cache.get() {
            c.invalidate_overlap(h, offset, data.len());
        }
    }

    pub(crate) fn acc_local(&self, h: usize, offset: usize, data: &[f64], alpha: f64) {
        let a = self.array(h);
        let s = a.dist.range_of(self.rank).start;
        {
            let mut shard = a.shard.lock();
            for (dst, x) in shard[offset - s..offset - s + data.len()]
                .iter_mut()
                .zip(data)
            {
                *dst += alpha * x;
            }
        }
        if let Some(c) = self.cache.get() {
            c.invalidate_overlap(h, offset, data.len());
        }
    }

    pub(crate) fn zero_local(&self, h: usize) {
        self.array(h).shard.lock().fill(0.0);
        if let Some(c) = self.cache.get() {
            c.invalidate_array(h);
        }
    }
}

/// The progress engine's view: offsets arrive global, exactly as the
/// requester computed them from the shared [`Distribution`].
impl ShardStore for DistStore {
    fn read(&self, array: u32, offset: usize, len: usize) -> Vec<f64> {
        let mut out = vec![0.0; len];
        self.read_local(array as usize, offset, &mut out);
        out
    }
    fn write(&self, array: u32, offset: usize, data: &[f64]) {
        self.write_local(array as usize, offset, data);
    }
    fn accumulate(&self, array: u32, offset: usize, data: &[f64], alpha: f64) {
        self.acc_local(array as usize, offset, data, alpha);
    }
}

/// Gather state of one multi-owner asynchronous get: remote pieces land
/// out of order; the last one releases the assembled buffer to the
/// callback (on the progress thread).
pub(crate) struct Assembly {
    state: StdMutex<AssemblyState>,
}

struct AssemblyState {
    buf: Vec<f64>,
    remaining: usize,
    cb: Option<GaGetCallback>,
}

impl Assembly {
    /// `buf` holds any locally-copied pieces already; `remaining` remote
    /// pieces are still in flight. `remaining` must be nonzero (callers
    /// with no remote pieces invoke the callback directly).
    pub(crate) fn new(buf: Vec<f64>, remaining: usize, cb: GaGetCallback) -> Arc<Self> {
        Arc::new(Self {
            state: StdMutex::new(AssemblyState {
                buf,
                remaining,
                cb: Some(cb),
            }),
        })
    }

    /// Deposit one remote piece at buffer position `at`, decoding the
    /// wire payload straight into the assembly buffer (no intermediate
    /// allocation).
    pub(crate) fn fill(&self, at: usize, data: WireSlice<'_>) {
        let finished = {
            let mut st = self.state.lock().unwrap();
            let n = data.len();
            data.copy_into(&mut st.buf[at..at + n]);
            st.remaining -= 1;
            if st.remaining == 0 {
                Some((std::mem::take(&mut st.buf), st.cb.take().unwrap()))
            } else {
                None
            }
        };
        if let Some((buf, cb)) = finished {
            cb(buf);
        }
    }
}

/// Block until an async get completes (the synchronous entry points wrap
/// the asynchronous machinery with this).
pub(crate) struct WaitSlot {
    state: StdMutex<Option<Vec<f64>>>,
    cv: Condvar,
}

impl WaitSlot {
    pub(crate) fn new() -> Arc<Self> {
        Arc::new(Self {
            state: StdMutex::new(None),
            cv: Condvar::new(),
        })
    }
    /// Completion for a `Ga`-level async get (assembled block).
    pub(crate) fn callback(self: &Arc<Self>) -> GaGetCallback {
        let slot = self.clone();
        Box::new(move |data| {
            *slot.state.lock().unwrap() = Some(data);
            slot.cv.notify_all();
        })
    }

    /// Completion for a raw endpoint get (one wire piece).
    pub(crate) fn wire_callback(self: &Arc<Self>) -> comm::GetCallback {
        let slot = self.clone();
        Box::new(move |data: WireSlice<'_>| {
            *slot.state.lock().unwrap() = Some(data.to_vec());
            slot.cv.notify_all();
        })
    }
    pub(crate) fn wait(&self) -> Vec<f64> {
        let mut got = self.state.lock().unwrap();
        while got.is_none() {
            got = self.cv.wait(got).unwrap();
        }
        got.take().unwrap()
    }
}

/// Collective reset of the shared NXTVAL counter (owned by rank 0): a
/// barrier brackets the owner's reset so no rank can draw a stale value
/// on either side.
pub(crate) fn nxtval_reset_collective(ep: &Endpoint) {
    ep.barrier();
    if ep.rank() == 0 {
        ep.nxtval_reset(0);
    }
    ep.barrier();
}
