//! The distributed backend: rank-local shards served over the comm layer.
//!
//! In distributed mode each process holds only its own slice of every
//! array (a [`DistStore`]), and the comm progress engine answers remote
//! `Get`/`Put`/`Acc`/`NxtVal` active messages against it — the real shape
//! of GA's data server. [`crate::Ga`] methods split every range by owner:
//! local pieces short-circuit to memcpy, remote pieces go on the wire.

use crate::cache::TileCache;
use crate::dist::Distribution;
use crate::{GaGetCallback, GangView};
use comm::{Endpoint, ShardStore, WireSlice};
use parking_lot::{Condvar as PlCondvar, Mutex};
use std::collections::{HashMap, HashSet};
use std::sync::{Arc, Condvar, Mutex as StdMutex, OnceLock};

/// Array ids are namespaced by gang tag: `id = (tag << NS_SHIFT) | idx`,
/// where `idx` is the allocation ordinal *within* that gang's namespace.
/// Tag 0 is the full mesh (the PR-8 layout, so single-gang runs are
/// bit-identical); a job gang's tag packs its leader rank and size.
/// Concurrent gangs therefore can never collide on an array id, which is
/// what makes allocation-order handles safe when disjoint jobs create
/// arrays at unrelated times.
pub(crate) const NS_SHIFT: u32 = 18;

/// Namespace tag of an array id.
pub(crate) fn ns_tag(h: usize) -> u32 {
    (h >> NS_SHIFT) as u32
}

struct DistArray {
    dist: Distribution,
    /// Global offset of this rank's shard (the gang-logical node's owned
    /// range start — precomputed because the store does not know which
    /// logical node this rank is within each array's gang).
    base: usize,
    /// This rank's owned slice, indexed by `global - base`.
    shard: Mutex<Vec<f64>>,
}

#[derive(Default)]
struct StoreState {
    arrays: HashMap<u32, Arc<DistArray>>,
    /// Next allocation ordinal per namespace tag.
    next_idx: HashMap<u32, u32>,
    /// Destroyed ids (plan-cache eviction). Kept as tombstones so a late
    /// or duplicated wire request against a destroyed array is answered
    /// with zeros / dropped instead of waiting 30s for a create that
    /// will never come.
    destroyed: HashSet<u32>,
}

/// Rank-local shards of every created array. The comm progress engine
/// holds one reference (to serve remote requests) and the owning
/// [`crate::Ga`] another (for local fast paths).
pub struct DistStore {
    rank: usize,
    state: Mutex<StoreState>,
    created: PlCondvar,
    /// The owning `Ga`'s tile cache, attached at `init_dist_cfg`. Every
    /// shard mutation — the local fast paths *and* incoming `Put`/`Acc`
    /// active messages, which the progress engine applies through the
    /// same methods — invalidates overlapping cached blocks here.
    cache: OnceLock<Arc<TileCache>>,
}

impl DistStore {
    /// Empty store for `rank` of `nranks`.
    pub fn new(rank: usize, nranks: usize) -> Arc<Self> {
        assert!(rank < nranks, "rank {rank} out of range for {nranks}");
        Arc::new(Self {
            rank,
            state: Mutex::new(StoreState::default()),
            created: PlCondvar::new(),
            cache: OnceLock::new(),
        })
    }

    pub(crate) fn attach_cache(&self, cache: Arc<TileCache>) {
        let _ = self.cache.set(cache);
    }

    /// This store's rank.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Allocate the local shard of a `len`-element array distributed
    /// over a gang of `nodes` logical nodes, of which this rank is
    /// `my_node`. Collective over the gang's members: each member
    /// allocates the next id in the `tag` namespace, so members agree on
    /// ids as long as they process the gang's jobs in the same order.
    pub(crate) fn create_gang(&self, tag: u32, len: usize, nodes: usize, my_node: usize) -> usize {
        let dist = Distribution::new(len, nodes);
        let r = dist.range_of(my_node);
        let base = r.start;
        let shard = Mutex::new(vec![0.0; r.len()]);
        let mut st = self.state.lock();
        let idx = st.next_idx.entry(tag).or_insert(0);
        assert!(*idx < (1 << NS_SHIFT), "namespace {tag} exhausted");
        let id = ((tag as usize) << NS_SHIFT) | *idx as usize;
        *idx += 1;
        st.arrays
            .insert(id as u32, Arc::new(DistArray { dist, base, shard }));
        self.created.notify_all();
        id
    }

    /// Drop the array's shard and tombstone its id (plan-cache
    /// eviction). Safe only after every gang member has passed the
    /// settle barrier of every job that used the array; late *wire*
    /// traffic against the id (chaos duplicates) is served zeros or
    /// dropped via the tombstone.
    pub fn destroy(&self, h: usize) {
        {
            let mut st = self.state.lock();
            st.arrays.remove(&(h as u32));
            st.destroyed.insert(h as u32);
        }
        self.created.notify_all();
        if let Some(c) = self.cache.get() {
            c.invalidate_array(h);
        }
    }

    /// `None` means destroyed. A missing id that is not tombstoned is
    /// awaited: creates are collective by convention but not
    /// synchronized, so a remote request can reach the progress thread
    /// before this rank's application thread has made the matching
    /// `create`. The request itself proves the create is coming.
    fn array(&self, h: usize) -> Option<Arc<DistArray>> {
        let mut st = self.state.lock();
        loop {
            if let Some(a) = st.arrays.get(&(h as u32)) {
                return Some(a.clone());
            }
            if st.destroyed.contains(&(h as u32)) {
                return None;
            }
            if self
                .created
                .wait_for(&mut st, std::time::Duration::from_secs(30))
                .timed_out()
            {
                panic!(
                    "array {h} never created on rank {} ({} exist)",
                    self.rank,
                    st.arrays.len()
                );
            }
        }
    }

    /// As [`Self::array`], for application paths that must never touch a
    /// destroyed array (only late wire duplicates legitimately can).
    fn live(&self, h: usize) -> Arc<DistArray> {
        self.array(h)
            .unwrap_or_else(|| panic!("array {h} used after destroy on rank {}", self.rank))
    }

    pub(crate) fn dist_of(&self, h: usize) -> Distribution {
        self.live(h).dist.clone()
    }

    /// Copy the locally-owned global range `[offset, offset+out.len())`
    /// into `out`. The range must lie inside this rank's shard. A
    /// destroyed array reads as zeros (late duplicate gets after a plan
    /// eviction).
    pub(crate) fn read_local(&self, h: usize, offset: usize, out: &mut [f64]) {
        match self.array(h) {
            Some(a) => {
                let s = a.base;
                out.copy_from_slice(&a.shard.lock()[offset - s..offset - s + out.len()]);
            }
            None => out.fill(0.0),
        }
    }

    pub(crate) fn write_local(&self, h: usize, offset: usize, data: &[f64]) {
        let Some(a) = self.array(h) else {
            return; // destroyed: late duplicate is dropped
        };
        let s = a.base;
        a.shard.lock()[offset - s..offset - s + data.len()].copy_from_slice(data);
        // Invalidate *after* the shard holds the new value: a concurrent
        // reader either hits the doomed entry (pre-write value, allowed
        // before the write completes) or refetches post-write data —
        // never caches stale data past the mutation.
        if let Some(c) = self.cache.get() {
            c.invalidate_overlap(h, offset, data.len());
        }
    }

    pub(crate) fn acc_local(&self, h: usize, offset: usize, data: &[f64], alpha: f64) {
        let Some(a) = self.array(h) else {
            return; // destroyed: late duplicate is dropped
        };
        let s = a.base;
        {
            let mut shard = a.shard.lock();
            for (dst, x) in shard[offset - s..offset - s + data.len()]
                .iter_mut()
                .zip(data)
            {
                *dst += alpha * x;
            }
        }
        if let Some(c) = self.cache.get() {
            c.invalidate_overlap(h, offset, data.len());
        }
    }

    pub(crate) fn zero_local(&self, h: usize) {
        if let Some(a) = self.array(h) {
            a.shard.lock().fill(0.0);
        }
        if let Some(c) = self.cache.get() {
            c.invalidate_array(h);
        }
    }

    /// Copy out everything a checkpoint needs (see [`crate::ckpt`]):
    /// every live array's shard plus the allocation cursors and
    /// tombstones that make post-restore creates agree with the other
    /// ranks. Arrays are sorted by id so the serialized image is
    /// byte-stable. Taken under the state lock — a consistent cut of
    /// this rank's shards (epoch alignment, i.e. not racing in-flight
    /// remote writes, is the caller's fence + barrier).
    pub(crate) fn snapshot_state(&self) -> StoreSnapshot {
        let st = self.state.lock();
        let mut arrays: Vec<_> = st
            .arrays
            .iter()
            .map(|(&id, a)| {
                (
                    id,
                    a.dist.len(),
                    a.dist.nodes(),
                    a.base,
                    a.shard.lock().clone(),
                )
            })
            .collect();
        arrays.sort_by_key(|e| e.0);
        let mut next_idx: Vec<(u32, u32)> = st.next_idx.iter().map(|(&t, &n)| (t, n)).collect();
        next_idx.sort_unstable();
        let mut destroyed: Vec<u32> = st.destroyed.iter().copied().collect();
        destroyed.sort_unstable();
        StoreSnapshot {
            arrays,
            next_idx,
            destroyed,
        }
    }

    /// Replace the whole store state with a restored snapshot and drop
    /// every cached block of both the old and the restored arrays — a
    /// rejoining rank must serve exactly the checkpointed bytes, never a
    /// pre-crash cache line.
    pub(crate) fn replace_state(&self, snap: StoreSnapshot) {
        let mut fresh = StoreState {
            next_idx: snap.next_idx.into_iter().collect(),
            destroyed: snap.destroyed.into_iter().collect(),
            ..StoreState::default()
        };
        let mut touched: Vec<u32> = Vec::new();
        for (id, len, nodes, base, shard) in snap.arrays {
            touched.push(id);
            let dist = Distribution::new(len, nodes);
            fresh.arrays.insert(
                id,
                Arc::new(DistArray {
                    dist,
                    base,
                    shard: Mutex::new(shard),
                }),
            );
        }
        {
            let mut st = self.state.lock();
            touched.extend(st.arrays.keys().copied());
            *st = fresh;
        }
        self.created.notify_all();
        if let Some(c) = self.cache.get() {
            touched.sort_unstable();
            touched.dedup();
            for id in touched {
                c.invalidate_array(id as usize);
            }
        }
    }
}

/// A consistent copy of one rank's store, the payload of a checkpoint:
/// per array `(id, total_len, gang_nodes, shard_base, shard)`, plus the
/// per-namespace allocation cursors and destroyed-id tombstones.
pub(crate) struct StoreSnapshot {
    pub(crate) arrays: Vec<(u32, usize, usize, usize, Vec<f64>)>,
    pub(crate) next_idx: Vec<(u32, u32)>,
    pub(crate) destroyed: Vec<u32>,
}

/// The progress engine's view: offsets arrive global, exactly as the
/// requester computed them from the shared [`Distribution`].
impl ShardStore for DistStore {
    fn read(&self, array: u32, offset: usize, len: usize) -> Vec<f64> {
        let mut out = vec![0.0; len];
        self.read_local(array as usize, offset, &mut out);
        out
    }
    fn write(&self, array: u32, offset: usize, data: &[f64]) {
        self.write_local(array as usize, offset, data);
    }
    fn accumulate(&self, array: u32, offset: usize, data: &[f64], alpha: f64) {
        self.acc_local(array as usize, offset, data, alpha);
    }
}

/// Gather state of one multi-owner asynchronous get: remote pieces land
/// out of order; the last one releases the assembled buffer to the
/// callback (on the progress thread).
pub(crate) struct Assembly {
    state: StdMutex<AssemblyState>,
}

struct AssemblyState {
    buf: Vec<f64>,
    remaining: usize,
    cb: Option<GaGetCallback>,
}

impl Assembly {
    /// `buf` holds any locally-copied pieces already; `remaining` remote
    /// pieces are still in flight. `remaining` must be nonzero (callers
    /// with no remote pieces invoke the callback directly).
    pub(crate) fn new(buf: Vec<f64>, remaining: usize, cb: GaGetCallback) -> Arc<Self> {
        Arc::new(Self {
            state: StdMutex::new(AssemblyState {
                buf,
                remaining,
                cb: Some(cb),
            }),
        })
    }

    /// Deposit one remote piece at buffer position `at`, decoding the
    /// wire payload straight into the assembly buffer (no intermediate
    /// allocation).
    pub(crate) fn fill(&self, at: usize, data: WireSlice<'_>) {
        let finished = {
            let mut st = self.state.lock().unwrap();
            let n = data.len();
            data.copy_into(&mut st.buf[at..at + n]);
            st.remaining -= 1;
            if st.remaining == 0 {
                Some((std::mem::take(&mut st.buf), st.cb.take().unwrap()))
            } else {
                None
            }
        };
        if let Some((buf, cb)) = finished {
            cb(buf);
        }
    }
}

/// Block until an async get completes (the synchronous entry points wrap
/// the asynchronous machinery with this).
pub(crate) struct WaitSlot {
    state: StdMutex<Option<Vec<f64>>>,
    cv: Condvar,
}

impl WaitSlot {
    pub(crate) fn new() -> Arc<Self> {
        Arc::new(Self {
            state: StdMutex::new(None),
            cv: Condvar::new(),
        })
    }
    /// Completion for a `Ga`-level async get (assembled block).
    pub(crate) fn callback(self: &Arc<Self>) -> GaGetCallback {
        let slot = self.clone();
        Box::new(move |data| {
            *slot.state.lock().unwrap() = Some(data);
            slot.cv.notify_all();
        })
    }

    /// Completion for a raw endpoint get (one wire piece).
    pub(crate) fn wire_callback(self: &Arc<Self>) -> comm::GetCallback {
        let slot = self.clone();
        Box::new(move |data: WireSlice<'_>| {
            *slot.state.lock().unwrap() = Some(data.to_vec());
            slot.cv.notify_all();
        })
    }
    pub(crate) fn wait(&self) -> Vec<f64> {
        let mut got = self.state.lock().unwrap();
        while got.is_none() {
            got = self.cv.wait(got).unwrap();
        }
        got.take().unwrap()
    }
}

/// Collective reset of a gang's shared NXTVAL counter (owned by the gang
/// leader): gang barriers bracket the leader's reset so no member can
/// draw a stale value on either side. Disjoint gangs have distinct
/// leaders, so concurrent jobs never share a counter.
pub(crate) fn nxtval_reset_collective(ep: &Endpoint, view: &GangView) {
    ep.barrier_gang(view.mask);
    if view.my_node == 0 {
        ep.nxtval_reset(view.members[0]);
    }
    ep.barrier_gang(view.mask);
}
