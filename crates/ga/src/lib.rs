//! A Global-Arrays-like toolkit.
//!
//! NWChem's TCE-generated code stores every tensor as a 1-D Global Array
//! that is block-distributed across nodes, addressed through a hash index
//! (`GET_HASH_BLOCK` / `ADD_HASH_BLOCK`), load-balanced with a shared
//! `NXTVAL` counter, and introspected with `ga_distribution`/`ga_access`.
//! This crate implements those facilities for a *logical* cluster living in
//! one process: data is real (so numerics are exact), node boundaries are
//! real (so ownership queries drive task placement and the simulator's
//! communication model), and every operation is counted (so executions can
//! be audited).
//!
//! * [`Ga`] — the toolkit instance: create arrays, query distributions,
//!   get/put/accumulate, `nxtval`.
//! * [`HashIndex`] — the TCE hash map from block key to `(offset, size)`.
//! * [`GaStats`] — operation counters.

pub mod dist;
pub mod hash;
pub mod stats;

pub use dist::Distribution;
pub use hash::HashIndex;
pub use stats::GaStats;

use parking_lot::Mutex;
use std::ops::Range;
use std::sync::atomic::{AtomicI64, Ordering};

/// Logical node index.
pub type NodeId = usize;

/// Handle to one global array.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GaHandle(usize);

/// One block-distributed array: node `i` owns the contiguous slice
/// `[chunk*i, chunk*(i+1))` (last node takes the remainder), mirroring
/// GA's default regular distribution.
struct Array {
    /// Ownership arithmetic, shared with the structural-only code paths.
    dist: Distribution,
    /// Per-node owned segments, guarded individually so that concurrent
    /// accumulates to different nodes do not serialize (and accumulates to
    /// the same node do, as in GA).
    segments: Vec<Mutex<Vec<f64>>>,
}

/// The Global Arrays toolkit instance for a logical cluster of `nodes`.
pub struct Ga {
    nodes: usize,
    arrays: Mutex<Vec<std::sync::Arc<Array>>>,
    nxtval: AtomicI64,
    stats: GaStats,
}

impl Ga {
    /// Initialize the toolkit for a cluster of `nodes >= 1` logical nodes.
    pub fn init(nodes: usize) -> Self {
        assert!(nodes >= 1, "need at least one node");
        Self {
            nodes,
            arrays: Mutex::new(Vec::new()),
            nxtval: AtomicI64::new(0),
            stats: GaStats::default(),
        }
    }

    /// Number of logical nodes.
    pub fn nnodes(&self) -> usize {
        self.nodes
    }

    /// Operation counters.
    pub fn stats(&self) -> &GaStats {
        &self.stats
    }

    /// Create a zero-initialized array of `len` elements.
    pub fn create(&self, len: usize) -> GaHandle {
        let dist = Distribution::new(len, self.nodes);
        let segments = (0..self.nodes)
            .map(|n| Mutex::new(vec![0.0; dist.range_of(n).len()]))
            .collect();
        let mut arrays = self.arrays.lock();
        arrays.push(std::sync::Arc::new(Array { dist, segments }));
        GaHandle(arrays.len() - 1)
    }

    fn array(&self, h: GaHandle) -> std::sync::Arc<Array> {
        self.arrays.lock()[h.0].clone()
    }

    /// Total length of the array.
    pub fn len_of(&self, h: GaHandle) -> usize {
        self.array(h).dist.len()
    }

    /// Clone of the array's block distribution (for structural queries).
    pub fn dist_of(&self, h: GaHandle) -> Distribution {
        self.array(h).dist.clone()
    }

    /// `ga_distribution`: the range of global offsets owned by `node`.
    pub fn distribution(&self, h: GaHandle, node: NodeId) -> Range<usize> {
        self.array(h).dist.range_of(node)
    }

    /// Owner of a single global offset.
    pub fn owner_of(&self, h: GaHandle, offset: usize) -> NodeId {
        self.array(h).dist.owner_of(offset)
    }

    /// Split `[offset, offset+len)` into per-owner pieces
    /// `(node, global_subrange)` — the information used to instantiate one
    /// `WRITE_C(i)` task per owner node (paper Figure 8).
    pub fn owners_of(&self, h: GaHandle, offset: usize, len: usize) -> Vec<(NodeId, Range<usize>)> {
        self.array(h).dist.owners_of(offset, len)
    }

    /// Read `[offset, offset+len)` into a fresh buffer (the data-movement
    /// half of `GET_HASH_BLOCK`).
    pub fn get(&self, h: GaHandle, offset: usize, len: usize) -> Vec<f64> {
        let a = self.array(h);
        let mut out = Vec::with_capacity(len);
        for (node, range) in a.dist.owners_of(offset, len) {
            let seg = a.segments[node].lock();
            let s = a.dist.range_of(node).start;
            out.extend_from_slice(&seg[range.start - s..range.end - s]);
        }
        self.stats.record_get(len * 8);
        out
    }

    /// As [`Self::get`], but into a caller-provided buffer: the pooled
    /// data path reuses tile buffers across tasks instead of allocating
    /// one per call.
    pub fn get_into(&self, h: GaHandle, offset: usize, out: &mut [f64]) {
        let a = self.array(h);
        for (node, range) in a.dist.owners_of(offset, out.len()) {
            let seg = a.segments[node].lock();
            let s = a.dist.range_of(node).start;
            out[range.start - offset..range.end - offset]
                .copy_from_slice(&seg[range.start - s..range.end - s]);
        }
        self.stats.record_get(out.len() * 8);
    }

    /// Overwrite `[offset, offset+len)` with `data`.
    pub fn put(&self, h: GaHandle, offset: usize, data: &[f64]) {
        let a = self.array(h);
        for (node, range) in a.dist.owners_of(offset, data.len()) {
            let mut seg = a.segments[node].lock();
            let s = a.dist.range_of(node).start;
            let src = &data[range.start - offset..range.end - offset];
            seg[range.start - s..range.end - s].copy_from_slice(src);
        }
        self.stats.record_put(data.len() * 8);
    }

    /// Atomic accumulate: `ga[offset..] += alpha * data` (the
    /// `ADD_HASH_BLOCK` primitive). Atomicity granularity is the owner
    /// node's segment lock, as in GA.
    pub fn acc(&self, h: GaHandle, offset: usize, data: &[f64], alpha: f64) {
        let a = self.array(h);
        for (node, range) in a.dist.owners_of(offset, data.len()) {
            let mut seg = a.segments[node].lock();
            let s = a.dist.range_of(node).start;
            let src = &data[range.start - offset..range.end - offset];
            for (dst, x) in seg[range.start - s..range.end - s].iter_mut().zip(src) {
                *dst += alpha * x;
            }
        }
        self.stats.record_acc(data.len() * 8);
    }

    /// Accumulate into only the part of `[offset, offset+len)` owned by
    /// `node` — what one `WRITE_C(i)` instance does with its slice of the
    /// incoming `C_sorted` matrix. No-op if `node` owns none of the range.
    pub fn acc_local(&self, h: GaHandle, node: NodeId, offset: usize, data: &[f64], alpha: f64) {
        let a = self.array(h);
        let r = a.dist.range_of(node);
        let (lo, hi) = (r.start, r.end);
        let begin = offset.max(lo);
        let end = (offset + data.len()).min(hi);
        if begin >= end {
            return;
        }
        let mut seg = a.segments[node].lock();
        let src = &data[begin - offset..end - offset];
        for (dst, x) in seg[begin - lo..end - lo].iter_mut().zip(src) {
            *dst += alpha * x;
        }
        self.stats.record_acc((end - begin) * 8);
    }

    /// Snapshot the full array (test/analysis helper; not a GA operation).
    pub fn snapshot(&self, h: GaHandle) -> Vec<f64> {
        let a = self.array(h);
        let mut out = Vec::with_capacity(a.dist.len());
        for seg in &a.segments {
            out.extend_from_slice(&seg.lock());
        }
        out
    }

    /// Zero the array in place.
    pub fn zero(&self, h: GaHandle) {
        let a = self.array(h);
        for seg in &a.segments {
            seg.lock().fill(0.0);
        }
    }

    /// `NXTVAL`: the shared work-stealing counter. Every call atomically
    /// returns the next value — "each MPI rank will atomically acquire a
    /// single unit of work each time". This is the global hot spot the
    /// paper identifies as unscalable.
    pub fn nxtval(&self) -> i64 {
        self.stats.record_nxtval();
        self.nxtval.fetch_add(1, Ordering::Relaxed)
    }

    /// Reset the NXTVAL counter (done between the seven work levels).
    pub fn nxtval_reset(&self) {
        self.nxtval.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distribution_covers_array_disjointly() {
        let ga = Ga::init(3);
        let h = ga.create(10);
        let d: Vec<_> = (0..3).map(|n| ga.distribution(h, n)).collect();
        assert_eq!(d[0], 0..4);
        assert_eq!(d[1], 4..8);
        assert_eq!(d[2], 8..10);
    }

    #[test]
    fn owner_queries() {
        let ga = Ga::init(3);
        let h = ga.create(10);
        assert_eq!(ga.owner_of(h, 0), 0);
        assert_eq!(ga.owner_of(h, 3), 0);
        assert_eq!(ga.owner_of(h, 4), 1);
        assert_eq!(ga.owner_of(h, 9), 2);
        let owners = ga.owners_of(h, 2, 7); // [2, 9)
        assert_eq!(owners, vec![(0, 2..4), (1, 4..8), (2, 8..9)]);
    }

    #[test]
    fn get_put_roundtrip_across_boundaries() {
        let ga = Ga::init(4);
        let h = ga.create(17);
        let data: Vec<f64> = (0..9).map(|x| x as f64).collect();
        ga.put(h, 3, &data);
        assert_eq!(ga.get(h, 3, 9), data);
        // Unwritten parts stay zero.
        assert_eq!(ga.get(h, 0, 3), vec![0.0; 3]);
    }

    #[test]
    fn acc_accumulates_with_alpha() {
        let ga = Ga::init(2);
        let h = ga.create(6);
        ga.acc(h, 1, &[1.0, 1.0, 1.0, 1.0], 2.0);
        ga.acc(h, 3, &[10.0], 1.0);
        assert_eq!(ga.snapshot(h), vec![0.0, 2.0, 2.0, 12.0, 2.0, 0.0]);
    }

    #[test]
    fn acc_local_only_touches_owned_part() {
        let ga = Ga::init(2);
        let h = ga.create(8); // node0: 0..4, node1: 4..8
        let data = vec![1.0; 6]; // global [1, 7)
        ga.acc_local(h, 0, 1, &data, 1.0);
        assert_eq!(ga.snapshot(h), vec![0.0, 1.0, 1.0, 1.0, 0.0, 0.0, 0.0, 0.0]);
        ga.acc_local(h, 1, 1, &data, 1.0);
        assert_eq!(ga.snapshot(h), vec![0.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 0.0]);
        // Sum of per-owner acc_local == one global acc.
        let ga2 = Ga::init(2);
        let h2 = ga2.create(8);
        ga2.acc(h2, 1, &data, 1.0);
        assert_eq!(ga.snapshot(h), ga2.snapshot(h2));
    }

    #[test]
    fn nxtval_monotone() {
        let ga = Ga::init(1);
        assert_eq!(ga.nxtval(), 0);
        assert_eq!(ga.nxtval(), 1);
        ga.nxtval_reset();
        assert_eq!(ga.nxtval(), 0);
        assert_eq!(ga.stats().nxtvals(), 3);
    }

    #[test]
    fn stats_count_bytes() {
        let ga = Ga::init(2);
        let h = ga.create(10);
        ga.get(h, 0, 5);
        ga.acc(h, 0, &[1.0; 4], 1.0);
        assert_eq!(ga.stats().get_bytes(), 40);
        assert_eq!(ga.stats().acc_bytes(), 32);
        assert_eq!(ga.stats().gets(), 1);
    }

    #[test]
    fn concurrent_accs_are_atomic() {
        use std::sync::Arc;
        let ga = Arc::new(Ga::init(3));
        let h = ga.create(32);
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let ga = ga.clone();
                std::thread::spawn(move || {
                    for _ in 0..250 {
                        ga.acc(h, 0, &vec![1.0; 32], 1.0);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert!(ga.snapshot(h).iter().all(|&x| x == 1000.0));
    }
}
