//! A Global-Arrays-like toolkit.
//!
//! NWChem's TCE-generated code stores every tensor as a 1-D Global Array
//! that is block-distributed across nodes, addressed through a hash index
//! (`GET_HASH_BLOCK` / `ADD_HASH_BLOCK`), load-balanced with a shared
//! `NXTVAL` counter, and introspected with `ga_distribution`/`ga_access`.
//! This crate implements those facilities for a *logical* cluster living in
//! one process: data is real (so numerics are exact), node boundaries are
//! real (so ownership queries drive task placement and the simulator's
//! communication model), and every operation is counted (so executions can
//! be audited).
//!
//! * [`Ga`] — the toolkit instance: create arrays, query distributions,
//!   get/put/accumulate, `nxtval`.
//! * [`HashIndex`] — the TCE hash map from block key to `(offset, size)`.
//! * [`GaStats`] — operation counters.
//!
//! Two backends share the `Ga` API. [`Ga::init`] keeps all logical nodes
//! in one process (exact numerics, auditable ownership, no wire).
//! [`Ga::init_dist`] holds only this rank's shard ([`DistStore`]) and
//! routes remote ranges through a [`comm::Endpoint`]: local pieces
//! short-circuit to memcpy, remote pieces become one-sided active
//! messages, and `NXTVAL` becomes a fetch-and-add on rank 0's counter
//! shard instead of a process-global atomic.
//!
//! The distributed read path is fronted by a per-rank read-through
//! [`cache::TileCache`]: completed gets are kept keyed by
//! `(array, offset, len)`, repeats are served locally, concurrent reads
//! of one block share a single wire transfer, and any local or incoming
//! `Put`/`Acc` invalidates overlapping entries (coherence contract in
//! DESIGN.md §4.6).

pub mod cache;
pub mod ckpt;
pub mod dist;
pub mod distga;
pub mod hash;
pub mod stats;

pub use cache::TileCacheConfig;
pub use ckpt::Checkpointer;
pub use dist::Distribution;
pub use distga::DistStore;
pub use hash::HashIndex;
pub use stats::GaStats;

use cache::{Lookup, TileCache};
use distga::{Assembly, WaitSlot};
use parking_lot::Mutex;
use std::ops::Range;
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Arc;

/// Logical node index.
pub type NodeId = usize;

/// Completion callback of an asynchronous get: receives the assembled
/// block. Runs on the calling thread when the read is satisfied locally
/// (cache hit or all-local range), on the progress thread otherwise.
pub type GaGetCallback = Box<dyn FnOnce(Vec<f64>) + Send>;

/// Handle to one global array.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GaHandle(usize);

/// A gang-scoped view of the mesh: the rank subset one job runs on, in
/// gang-logical node numbering. All distribution arithmetic below runs
/// in logical node indices `0..members.len()`; only the wire hop
/// translates a logical owner to its real rank (`members[node]`). The
/// full mesh is the identity view (tag 0), which reproduces the PR-8
/// layout bit for bit.
#[derive(Clone)]
pub struct GangView {
    /// Array-id namespace tag: 0 for the full mesh, else
    /// `(leader_rank << 7) | gang_size` — unique per live gang shape, so
    /// concurrent gangs can never collide on an array id.
    pub tag: u32,
    /// Real rank of each gang-logical node, ascending.
    pub members: Arc<Vec<usize>>,
    /// This rank's gang-logical node index.
    pub my_node: usize,
    /// Member bitmask, the gang-barrier group key.
    pub mask: u64,
}

impl GangView {
    /// The identity view: every rank, logical == real.
    pub fn full(rank: usize, nranks: usize) -> Self {
        Self {
            tag: 0,
            members: Arc::new((0..nranks).collect()),
            my_node: rank,
            mask: comm::full_mask(nranks),
        }
    }

    /// The view of gang `mask` as seen from `rank` (which must be a
    /// member). The full mask folds onto the identity view so
    /// single-gang configurations keep the tag-0 namespace.
    pub fn from_mask(rank: usize, nranks: usize, mask: u64) -> Self {
        if mask == comm::full_mask(nranks) {
            return Self::full(rank, nranks);
        }
        let members: Vec<usize> = comm::mask_members(mask).collect();
        assert!(members.len() < 128, "gang size exceeds the tag encoding");
        let tag = ((members[0] as u32) << 7) | members.len() as u32;
        let my_node = members
            .iter()
            .position(|&r| r == rank)
            .unwrap_or_else(|| panic!("rank {rank} is not a member of gang {mask:#b}"));
        Self {
            tag,
            members: Arc::new(members),
            my_node,
            mask,
        }
    }
}

/// One block-distributed array: node `i` owns the contiguous slice
/// `[chunk*i, chunk*(i+1))` (last node takes the remainder), mirroring
/// GA's default regular distribution.
struct Array {
    /// Ownership arithmetic, shared with the structural-only code paths.
    dist: Distribution,
    /// Per-node owned segments, guarded individually so that concurrent
    /// accumulates to different nodes do not serialize (and accumulates to
    /// the same node do, as in GA).
    segments: Vec<Mutex<Vec<f64>>>,
}

/// Storage strategy behind a [`Ga`] instance.
enum Backend {
    /// All nodes' segments live in this process.
    Local {
        arrays: Mutex<Vec<Arc<Array>>>,
        nxtval: AtomicI64,
    },
    /// Only this rank's shards live here; other ranks are reached through
    /// the comm endpoint, and `NXTVAL` lives on the gang leader.
    Dist {
        ep: Arc<comm::Endpoint>,
        store: Arc<DistStore>,
        cache: Arc<TileCache>,
        view: GangView,
    },
}

/// The Global Arrays toolkit instance for a logical cluster of `nodes`.
pub struct Ga {
    nodes: usize,
    backend: Backend,
    stats: Arc<GaStats>,
}

impl Ga {
    /// Initialize the toolkit for a cluster of `nodes >= 1` logical nodes,
    /// all resident in this process.
    pub fn init(nodes: usize) -> Self {
        assert!(nodes >= 1, "need at least one node");
        Self {
            nodes,
            backend: Backend::Local {
                arrays: Mutex::new(Vec::new()),
                nxtval: AtomicI64::new(0),
            },
            stats: Arc::new(GaStats::default()),
        }
    }

    /// Initialize the distributed backend for one rank with the default
    /// tile-cache configuration. `store` must be the same [`DistStore`]
    /// the endpoint serves (the endpoint answers remote requests against
    /// it; `Ga` takes the local fast path).
    pub fn init_dist(ep: Arc<comm::Endpoint>, store: Arc<DistStore>) -> Self {
        Self::init_dist_cfg(ep, store, TileCacheConfig::default())
    }

    /// As [`Self::init_dist`], with explicit tile-cache configuration.
    /// The cache is attached to `store` so incoming `Put`/`Acc` active
    /// messages invalidate overlapping cached blocks as they are applied.
    pub fn init_dist_cfg(
        ep: Arc<comm::Endpoint>,
        store: Arc<DistStore>,
        cache_cfg: TileCacheConfig,
    ) -> Self {
        assert_eq!(ep.rank(), store.rank(), "endpoint and store disagree");
        let stats = Arc::new(GaStats::default());
        let cache = TileCache::new(cache_cfg, stats.clone());
        store.attach_cache(cache.clone());
        let view = GangView::full(ep.rank(), ep.nranks());
        Self {
            nodes: ep.nranks(),
            backend: Backend::Dist {
                ep,
                store,
                cache,
                view,
            },
            stats,
        }
    }

    /// A second toolkit instance over the *same* endpoint, shard store,
    /// tile cache and counters — how the service layer materializes one
    /// workspace per cached plan while all of them run on a single
    /// persistent rank daemon. The cache must be shared rather than
    /// re-attached (the store's `attach_cache` is first-set-wins), so
    /// invalidations and pins stay coherent across every instance.
    /// Panics on a local-backend instance, which owns its segments and
    /// cannot be shared this way.
    pub fn dist_share(&self) -> Self {
        match &self.backend {
            Backend::Local { .. } => panic!("dist_share requires the distributed backend"),
            Backend::Dist {
                ep,
                store,
                cache,
                view,
            } => Self {
                nodes: self.nodes,
                backend: Backend::Dist {
                    ep: ep.clone(),
                    store: store.clone(),
                    cache: cache.clone(),
                    view: view.clone(),
                },
                stats: self.stats.clone(),
            },
        }
    }

    /// As [`Self::dist_share`], but scoped to the gang `mask`: arrays
    /// created through the returned instance are distributed over the
    /// gang's members only (gang-logical node indices, namespaced ids),
    /// `sync` is a gang barrier plus a scope-local cache flush, and
    /// `NXTVAL` lives on the gang leader. The calling rank must be a
    /// member.
    pub fn dist_share_gang(&self, mask: u64) -> Self {
        match &self.backend {
            Backend::Local { .. } => panic!("dist_share_gang requires the distributed backend"),
            Backend::Dist {
                ep, store, cache, ..
            } => {
                let view = GangView::from_mask(ep.rank(), ep.nranks(), mask);
                Self {
                    nodes: view.members.len(),
                    backend: Backend::Dist {
                        ep: ep.clone(),
                        store: store.clone(),
                        cache: cache.clone(),
                        view,
                    },
                    stats: self.stats.clone(),
                }
            }
        }
    }

    /// The gang view this instance is scoped to (identity on the full
    /// mesh; `None` in local mode).
    pub fn gang_view(&self) -> Option<&GangView> {
        match &self.backend {
            Backend::Local { .. } => None,
            Backend::Dist { view, .. } => Some(view),
        }
    }

    /// Mark an array read-mostly: its cached blocks survive `sync`
    /// flushes (epoch retention, DESIGN.md §4.8). Mutations still
    /// invalidate overlapping entries unconditionally, so pinning is
    /// always *safe* — it only pays off for blocks nobody rewrites
    /// between epochs. No-op in local mode, which has no cache.
    pub fn pin_array(&self, h: GaHandle) {
        if let Backend::Dist { cache, .. } = &self.backend {
            cache.pin_array(h.0);
        }
    }

    /// Undo [`Self::pin_array`] and drop the array's cached blocks.
    pub fn unpin_array(&self, h: GaHandle) {
        if let Backend::Dist { cache, .. } = &self.backend {
            cache.unpin_array(h.0);
        }
    }

    /// Number of logical nodes.
    pub fn nnodes(&self) -> usize {
        self.nodes
    }

    /// This process's rank (0 in local mode, where every node is local).
    pub fn rank(&self) -> usize {
        match &self.backend {
            Backend::Local { .. } => 0,
            Backend::Dist { ep, .. } => ep.rank(),
        }
    }

    /// True when running over the wire.
    pub fn is_dist(&self) -> bool {
        matches!(self.backend, Backend::Dist { .. })
    }

    /// The comm endpoint in distributed mode.
    pub fn endpoint(&self) -> Option<&Arc<comm::Endpoint>> {
        match &self.backend {
            Backend::Local { .. } => None,
            Backend::Dist { ep, .. } => Some(ep),
        }
    }

    /// The rank-local shard store in distributed mode (checkpoint /
    /// restore entry point, see [`ckpt`]).
    pub fn dist_store(&self) -> Option<&Arc<DistStore>> {
        match &self.backend {
            Backend::Local { .. } => None,
            Backend::Dist { store, .. } => Some(store),
        }
    }

    /// Spill an epoch-aligned checkpoint of this rank's shards and
    /// NXTVAL counter through `ck`. The caller brackets this with
    /// [`Self::sync`] so no in-flight remote write races the image.
    /// Returns the image size in bytes; no-op (zero) in local mode,
    /// which cannot lose a rank.
    pub fn checkpoint(&self, ck: &Checkpointer, epoch: u64) -> std::io::Result<u64> {
        match &self.backend {
            Backend::Local { .. } => Ok(0),
            Backend::Dist { ep, store, .. } => ck.save(store, epoch, ep.local_counter()),
        }
    }

    /// Restore this rank's shards and NXTVAL counter from `ck`'s spill
    /// file; returns the image's epoch. Panics on the local backend.
    pub fn restore(&self, ck: &Checkpointer) -> std::io::Result<u64> {
        match &self.backend {
            Backend::Local { .. } => panic!("restore requires the distributed backend"),
            Backend::Dist { ep, store, .. } => {
                let (epoch, nxtval) = ck.load(store)?;
                ep.set_local_counter(nxtval);
                Ok(epoch)
            }
        }
    }

    /// Operation counters.
    pub fn stats(&self) -> &GaStats {
        &self.stats
    }

    /// Create a zero-initialized array of `len` elements. Collective in
    /// distributed mode: every rank must create the same arrays in the
    /// same order.
    pub fn create(&self, len: usize) -> GaHandle {
        match &self.backend {
            Backend::Local { arrays, .. } => {
                let dist = Distribution::new(len, self.nodes);
                let segments = (0..self.nodes)
                    .map(|n| Mutex::new(vec![0.0; dist.range_of(n).len()]))
                    .collect();
                let mut arrays = arrays.lock();
                arrays.push(Arc::new(Array { dist, segments }));
                GaHandle(arrays.len() - 1)
            }
            Backend::Dist { store, view, .. } => {
                GaHandle(store.create_gang(view.tag, len, view.members.len(), view.my_node))
            }
        }
    }

    /// Drop the array's shard and cached blocks and tombstone its id
    /// (plan-cache eviction). Distributed mode only; collective over the
    /// owning gang by the same convention as [`Self::create`]. Late wire
    /// duplicates against the id read zeros instead of hanging.
    pub fn destroy(&self, h: GaHandle) {
        if let Backend::Dist { store, cache, .. } = &self.backend {
            cache.unpin_array(h.0);
            store.destroy(h.0);
        }
    }

    fn array(&self, h: GaHandle) -> Arc<Array> {
        match &self.backend {
            Backend::Local { arrays, .. } => arrays.lock()[h.0].clone(),
            Backend::Dist { .. } => unreachable!("local array in dist mode"),
        }
    }

    fn dist_of_any(&self, h: GaHandle) -> Distribution {
        match &self.backend {
            Backend::Local { arrays, .. } => arrays.lock()[h.0].dist.clone(),
            Backend::Dist { store, .. } => store.dist_of(h.0),
        }
    }

    /// Total length of the array.
    pub fn len_of(&self, h: GaHandle) -> usize {
        self.dist_of_any(h).len()
    }

    /// Clone of the array's block distribution (for structural queries).
    pub fn dist_of(&self, h: GaHandle) -> Distribution {
        self.dist_of_any(h)
    }

    /// `ga_distribution`: the range of global offsets owned by `node`.
    pub fn distribution(&self, h: GaHandle, node: NodeId) -> Range<usize> {
        self.dist_of_any(h).range_of(node)
    }

    /// Owner of a single global offset.
    pub fn owner_of(&self, h: GaHandle, offset: usize) -> NodeId {
        self.dist_of_any(h).owner_of(offset)
    }

    /// Split `[offset, offset+len)` into per-owner pieces
    /// `(node, global_subrange)` — the information used to instantiate one
    /// `WRITE_C(i)` task per owner node (paper Figure 8).
    pub fn owners_of(&self, h: GaHandle, offset: usize, len: usize) -> Vec<(NodeId, Range<usize>)> {
        self.dist_of_any(h).owners_of(offset, len)
    }

    /// Read `[offset, offset+len)` into a fresh buffer (the data-movement
    /// half of `GET_HASH_BLOCK`).
    pub fn get(&self, h: GaHandle, offset: usize, len: usize) -> Vec<f64> {
        let mut out = vec![0.0; len];
        self.get_into(h, offset, &mut out);
        out
    }

    /// As [`Self::get`], but into a caller-provided buffer: the pooled
    /// data path reuses tile buffers across tasks instead of allocating
    /// one per call.
    pub fn get_into(&self, h: GaHandle, offset: usize, out: &mut [f64]) {
        match &self.backend {
            Backend::Local { .. } => {
                let a = self.array(h);
                for (node, range) in a.dist.owners_of(offset, out.len()) {
                    let seg = a.segments[node].lock();
                    let s = a.dist.range_of(node).start;
                    out[range.start - offset..range.end - offset]
                        .copy_from_slice(&seg[range.start - s..range.end - s]);
                }
                self.stats.record_locality(out.len() * 8, 0);
            }
            Backend::Dist { store, view, .. } => {
                let dist = store.dist_of(h.0);
                let me = view.my_node;
                let pieces = dist.owners_of(offset, out.len());
                if pieces.iter().all(|(node, _)| *node == me) {
                    // Entirely this rank's shard: straight memcpy, no
                    // buffer hand-off, no cache involvement.
                    for (_, range) in &pieces {
                        store.read_local(
                            h.0,
                            range.start,
                            &mut out[range.start - offset..range.end - offset],
                        );
                    }
                    self.stats.record_locality(out.len() * 8, 0);
                } else {
                    let slot = WaitSlot::new();
                    self.dist_fetch(h, offset, vec![0.0; out.len()], i64::MAX, slot.callback());
                    out.copy_from_slice(&slot.wait());
                }
            }
        }
        self.stats.record_get(out.len() * 8);
    }

    /// Asynchronous get: assembles `[offset, offset+len)` (local pieces by
    /// memcpy, remote pieces over the wire at priority `prio`) and hands
    /// the buffer to `cb`. With no remote pieces — or a tile-cache hit —
    /// `cb` runs on the calling thread before returning; otherwise it
    /// runs on the progress thread when the last piece lands. This is the
    /// prefetch entry point: reader tasks post these and retire, and
    /// completions re-enter the runtime.
    pub fn get_async(&self, h: GaHandle, offset: usize, len: usize, prio: i64, cb: GaGetCallback) {
        self.get_async_into(h, offset, vec![0.0; len], prio, cb);
    }

    /// As [`Self::get_async`], reading into a caller-provided buffer
    /// (whose length is the read length) so the pooled data path reuses
    /// tile buffers instead of allocating one per call.
    pub fn get_async_into(
        &self,
        h: GaHandle,
        offset: usize,
        mut buf: Vec<f64>,
        prio: i64,
        cb: GaGetCallback,
    ) {
        let len = buf.len();
        self.stats.record_get(len * 8);
        match &self.backend {
            Backend::Local { .. } => {
                let a = self.array(h);
                for (node, range) in a.dist.owners_of(offset, len) {
                    let seg = a.segments[node].lock();
                    let s = a.dist.range_of(node).start;
                    buf[range.start - offset..range.end - offset]
                        .copy_from_slice(&seg[range.start - s..range.end - s]);
                }
                self.stats.record_locality(len * 8, 0);
                cb(buf);
            }
            Backend::Dist { .. } => self.dist_fetch(h, offset, buf, prio, cb),
        }
    }

    /// Warm the tile cache for a later read of `[offset, offset+len)`:
    /// a miss starts the coalescable fill, a hit or in-flight fill (or
    /// an all-local / uncached range) is left alone. Nothing is
    /// delivered, so the `verify_reads` oracle is skipped — which is
    /// what makes this, unlike [`Ga::get_async`], safe to call from the
    /// progress thread (a blocking verify there would deadlock against
    /// the replies only that thread can deliver).
    pub fn prefetch(&self, h: GaHandle, offset: usize, len: usize, prio: i64) {
        let Backend::Dist {
            store, cache, view, ..
        } = &self.backend
        else {
            return; // local backend: every read is already a memcpy
        };
        if !cache.enabled() {
            return; // nowhere to park the bytes: fetching would waste wire
        }
        let dist = store.dist_of(h.0);
        let pieces = dist.owners_of(offset, len);
        if pieces.iter().all(|(node, _)| *node == view.my_node) {
            return;
        }
        match cache.lookup((h.0, offset, len), vec![0.0; len], Box::new(|_| {})) {
            Lookup::Hit { .. } | Lookup::Joined => {}
            Lookup::Fill { fill, buf, cb } => {
                let cache = cache.clone();
                let final_cb: GaGetCallback = Box::new(move |assembled: Vec<f64>| {
                    let waiters = cache.complete(&fill, &assembled);
                    for mut w in waiters {
                        w.buf.copy_from_slice(&assembled);
                        (w.cb)(w.buf);
                    }
                    cb(assembled);
                });
                self.fetch_assemble(h, offset, buf, prio, final_cb, &pieces);
            }
        }
    }

    /// Distributed read of `[offset, offset+buf.len())` through the tile
    /// cache: all-local ranges short-circuit; cached blocks are served
    /// from memory; concurrent readers of one uncached block coalesce
    /// onto a single fill whose completion feeds every waiter.
    fn dist_fetch(
        &self,
        h: GaHandle,
        offset: usize,
        mut buf: Vec<f64>,
        prio: i64,
        cb: GaGetCallback,
    ) {
        let Backend::Dist {
            store, cache, view, ..
        } = &self.backend
        else {
            unreachable!("dist_fetch on local backend")
        };
        let len = buf.len();
        let dist = store.dist_of(h.0);
        let me = view.my_node;
        let pieces = dist.owners_of(offset, len);
        let remote_b: usize = pieces
            .iter()
            .filter(|(node, _)| *node != me)
            .map(|(_, r)| r.len() * 8)
            .sum();
        if remote_b == 0 {
            for (_, range) in &pieces {
                store.read_local(
                    h.0,
                    range.start,
                    &mut buf[range.start - offset..range.end - offset],
                );
            }
            self.stats.record_locality(len * 8, 0);
            cb(buf);
            return;
        }
        if !cache.enabled() {
            self.fetch_assemble(h, offset, buf, prio, cb, &pieces);
            return;
        }
        match cache.lookup((h.0, offset, len), buf, cb) {
            Lookup::Hit { data, mut buf, cb } => {
                // Served from cache: no wire traffic, all bytes local.
                self.stats.record_locality(len * 8, 0);
                if cache.verify_reads() {
                    // Paranoia gate: refetch fresh from the owners and
                    // compare. Hits complete on the calling (application)
                    // thread, so blocking here is safe.
                    let fresh = self.fetch_fresh_blocking(h, offset, len, &pieces);
                    if fresh != *data {
                        self.stats.record_stale_read();
                    }
                }
                buf.copy_from_slice(&data);
                cb(buf);
            }
            Lookup::Joined => {
                // Parked on an in-flight fill of the same block; its
                // completion delivers our buffer. No wire traffic ours.
                self.stats.record_locality(len * 8, 0);
            }
            Lookup::Fill { fill, buf, cb } => {
                let cache = cache.clone();
                let final_cb: GaGetCallback = Box::new(move |assembled: Vec<f64>| {
                    let waiters = cache.complete(&fill, &assembled);
                    for mut w in waiters {
                        w.buf.copy_from_slice(&assembled);
                        (w.cb)(w.buf);
                    }
                    cb(assembled);
                });
                self.fetch_assemble(h, offset, buf, prio, final_cb, &pieces);
            }
        }
    }

    /// Uncached read: local pieces by memcpy, each remote piece one wire
    /// get, assembled into `buf` and handed to `cb` when the last piece
    /// lands.
    fn fetch_assemble(
        &self,
        h: GaHandle,
        offset: usize,
        mut buf: Vec<f64>,
        prio: i64,
        cb: GaGetCallback,
        pieces: &[(NodeId, Range<usize>)],
    ) {
        let Backend::Dist {
            ep, store, view, ..
        } = &self.backend
        else {
            unreachable!("fetch_assemble on local backend")
        };
        let me = view.my_node;
        let (mut local_b, mut remote_b) = (0, 0);
        let mut remote = Vec::new();
        for (node, range) in pieces {
            if *node == me {
                store.read_local(
                    h.0,
                    range.start,
                    &mut buf[range.start - offset..range.end - offset],
                );
                local_b += range.len() * 8;
            } else {
                remote_b += range.len() * 8;
                remote.push((*node, range.clone()));
            }
        }
        self.stats.record_locality(local_b, remote_b);
        self.stats.record_remote_get_bytes(remote_b);
        if remote.is_empty() {
            cb(buf);
            return;
        }
        let asm = Assembly::new(buf, remote.len(), cb);
        for (node, range) in remote {
            let asm = asm.clone();
            let at = range.start - offset;
            ep.get_async(
                view.members[node],
                h.0 as u32,
                range.start,
                range.len(),
                prio,
                Box::new(move |data| asm.fill(at, data)),
            );
        }
    }

    /// Blocking uncached read straight from the owners, bypassing the
    /// cache — the `verify_reads` oracle. Wire bytes are still counted in
    /// `remote_get_bytes` so the endpoint reconciliation holds.
    fn fetch_fresh_blocking(
        &self,
        h: GaHandle,
        offset: usize,
        len: usize,
        pieces: &[(NodeId, Range<usize>)],
    ) -> Vec<f64> {
        let Backend::Dist {
            ep, store, view, ..
        } = &self.backend
        else {
            unreachable!("fetch_fresh_blocking on local backend")
        };
        let me = view.my_node;
        let mut out = vec![0.0; len];
        let mut waits = Vec::new();
        for (node, range) in pieces {
            if *node == me {
                store.read_local(
                    h.0,
                    range.start,
                    &mut out[range.start - offset..range.end - offset],
                );
            } else {
                let slot = WaitSlot::new();
                ep.get_async(
                    view.members[*node],
                    h.0 as u32,
                    range.start,
                    range.len(),
                    i64::MAX,
                    slot.wire_callback(),
                );
                self.stats.record_remote_get_bytes(range.len() * 8);
                waits.push((range.clone(), slot));
            }
        }
        for (range, slot) in waits {
            out[range.start - offset..range.end - offset].copy_from_slice(&slot.wait());
        }
        out
    }

    /// Overwrite `[offset, offset+len)` with `data`.
    pub fn put(&self, h: GaHandle, offset: usize, data: &[f64]) {
        match &self.backend {
            Backend::Local { .. } => {
                let a = self.array(h);
                for (node, range) in a.dist.owners_of(offset, data.len()) {
                    let mut seg = a.segments[node].lock();
                    let s = a.dist.range_of(node).start;
                    let src = &data[range.start - offset..range.end - offset];
                    seg[range.start - s..range.end - s].copy_from_slice(src);
                }
                self.stats.record_locality(data.len() * 8, 0);
            }
            Backend::Dist {
                ep,
                store,
                cache,
                view,
            } => {
                // Invalidate before the pieces go out so this rank never
                // serves its own pre-write copy from cache again
                // (read-your-writes; DESIGN.md §4.6). Local pieces also
                // invalidate inside `write_local`, which is what covers
                // *incoming* puts from other ranks.
                cache.invalidate_overlap(h.0, offset, data.len());
                let dist = store.dist_of(h.0);
                let me = view.my_node;
                let (mut local_b, mut remote_b) = (0, 0);
                for (node, range) in dist.owners_of(offset, data.len()) {
                    let src = &data[range.start - offset..range.end - offset];
                    if node == me {
                        store.write_local(h.0, range.start, src);
                        local_b += range.len() * 8;
                    } else {
                        ep.put(view.members[node], h.0 as u32, range.start, src);
                        remote_b += range.len() * 8;
                    }
                }
                self.stats.record_locality(local_b, remote_b);
            }
        }
        self.stats.record_put(data.len() * 8);
    }

    /// Collective overwrite: every rank calls this with identical
    /// arguments, and each writes only the part of the range it owns —
    /// how the tensors are materialized without moving bytes. Equivalent
    /// to [`Self::put`] in local mode.
    pub fn put_collective(&self, h: GaHandle, offset: usize, data: &[f64]) {
        match &self.backend {
            Backend::Local { .. } => self.put(h, offset, data),
            Backend::Dist {
                store, cache, view, ..
            } => {
                // The collective write mutates every rank's shard, but
                // only the local piece generates an invalidation hook —
                // drop the whole range here so cached copies of the
                // remotely-rewritten pieces cannot survive.
                cache.invalidate_overlap(h.0, offset, data.len());
                let dist = store.dist_of(h.0);
                let me = view.my_node;
                let mut written = 0;
                for (node, range) in dist.owners_of(offset, data.len()) {
                    if node == me {
                        store.write_local(
                            h.0,
                            range.start,
                            &data[range.start - offset..range.end - offset],
                        );
                        written += range.len() * 8;
                    }
                }
                self.stats.record_put(written);
                self.stats.record_locality(written, 0);
            }
        }
    }

    /// Atomic accumulate: `ga[offset..] += alpha * data` (the
    /// `ADD_HASH_BLOCK` primitive). Atomicity granularity is the owner
    /// node's segment lock, as in GA. In distributed mode remote pieces
    /// are asynchronous; completion is observed through [`Self::sync`].
    pub fn acc(&self, h: GaHandle, offset: usize, data: &[f64], alpha: f64) {
        match &self.backend {
            Backend::Local { .. } => {
                let a = self.array(h);
                for (node, range) in a.dist.owners_of(offset, data.len()) {
                    let mut seg = a.segments[node].lock();
                    let s = a.dist.range_of(node).start;
                    let src = &data[range.start - offset..range.end - offset];
                    for (dst, x) in seg[range.start - s..range.end - s].iter_mut().zip(src) {
                        *dst += alpha * x;
                    }
                }
                self.stats.record_locality(data.len() * 8, 0);
            }
            Backend::Dist {
                ep,
                store,
                cache,
                view,
            } => {
                cache.invalidate_overlap(h.0, offset, data.len());
                let dist = store.dist_of(h.0);
                let me = view.my_node;
                let (mut local_b, mut remote_b) = (0, 0);
                for (node, range) in dist.owners_of(offset, data.len()) {
                    let src = &data[range.start - offset..range.end - offset];
                    if node == me {
                        store.acc_local(h.0, range.start, src, alpha);
                        local_b += range.len() * 8;
                    } else {
                        ep.acc(view.members[node], h.0 as u32, range.start, src, alpha);
                        remote_b += range.len() * 8;
                    }
                }
                self.stats.record_locality(local_b, remote_b);
            }
        }
        self.stats.record_acc(data.len() * 8);
    }

    /// Accumulate into only the part of `[offset, offset+len)` owned by
    /// `node` — what one `WRITE_C(i)` instance does with its slice of the
    /// incoming `C_sorted` matrix. No-op if `node` owns none of the range.
    pub fn acc_local(&self, h: GaHandle, node: NodeId, offset: usize, data: &[f64], alpha: f64) {
        let dist = self.dist_of_any(h);
        let r = dist.range_of(node);
        let (lo, hi) = (r.start, r.end);
        let begin = offset.max(lo);
        let end = (offset + data.len()).min(hi);
        if begin >= end {
            return;
        }
        let src = &data[begin - offset..end - offset];
        match &self.backend {
            Backend::Local { .. } => {
                let a = self.array(h);
                let mut seg = a.segments[node].lock();
                for (dst, x) in seg[begin - lo..end - lo].iter_mut().zip(src) {
                    *dst += alpha * x;
                }
                self.stats.record_locality(src.len() * 8, 0);
            }
            Backend::Dist {
                ep,
                store,
                cache,
                view,
            } => {
                cache.invalidate_overlap(h.0, begin, end - begin);
                if node == view.my_node {
                    store.acc_local(h.0, begin, src, alpha);
                    self.stats.record_locality(src.len() * 8, 0);
                } else {
                    ep.acc(view.members[node], h.0 as u32, begin, src, alpha);
                    self.stats.record_locality(0, src.len() * 8);
                }
            }
        }
        self.stats.record_acc((end - begin) * 8);
    }

    /// Snapshot the full array. In distributed mode this pulls every
    /// remote shard (test/analysis helper; not a GA operation).
    pub fn snapshot(&self, h: GaHandle) -> Vec<f64> {
        match &self.backend {
            Backend::Local { .. } => {
                let a = self.array(h);
                let mut out = Vec::with_capacity(a.dist.len());
                for seg in &a.segments {
                    out.extend_from_slice(&seg.lock());
                }
                out
            }
            Backend::Dist { .. } => {
                let len = self.len_of(h);
                self.get(h, 0, len)
            }
        }
    }

    /// Zero the array in place. Collective in distributed mode: each rank
    /// zeroes its own shard (bracket with [`Self::sync`] as needed).
    pub fn zero(&self, h: GaHandle) {
        match &self.backend {
            Backend::Local { .. } => {
                let a = self.array(h);
                for seg in &a.segments {
                    seg.lock().fill(0.0);
                }
            }
            Backend::Dist { store, cache, .. } => {
                // Every rank zeroes its own shard, so no invalidation AM
                // arrives for the remote pieces — drop the whole array.
                cache.invalidate_array(h.0);
                store.zero_local(h.0);
            }
        }
    }

    /// `NXTVAL`: the shared work-stealing counter. Every call atomically
    /// returns the next value — "each MPI rank will atomically acquire a
    /// single unit of work each time". This is the global hot spot the
    /// paper identifies as unscalable; in distributed mode it is a real
    /// one: a fetch-and-add served by rank 0's progress thread.
    pub fn nxtval(&self) -> i64 {
        self.stats.record_nxtval();
        match &self.backend {
            Backend::Local { nxtval, .. } => nxtval.fetch_add(1, Ordering::Relaxed),
            Backend::Dist { ep, view, .. } => ep.nxtval(view.members[0]),
        }
    }

    /// Reset the NXTVAL counter (done between the seven work levels).
    /// Collective in distributed mode — over the gang: barriers bracket
    /// the leader's reset so no member can draw a stale value on either
    /// side.
    pub fn nxtval_reset(&self) {
        match &self.backend {
            Backend::Local { nxtval, .. } => nxtval.store(0, Ordering::Relaxed),
            Backend::Dist { ep, view, .. } => distga::nxtval_reset_collective(ep, view),
        }
    }

    /// Fence this rank's outstanding writes, then a gang barrier — GA's
    /// `sync`, scoped to this instance's gang. No-op in local mode,
    /// where every operation is immediately visible. The sync boundary
    /// is where GA's relaxed model makes third-party mutations visible,
    /// so the gang's slice of the tile cache is flushed here (other
    /// concurrent gangs' entries are untouched — their coherence epochs
    /// are their own syncs).
    pub fn sync(&self) {
        if let Backend::Dist {
            ep, cache, view, ..
        } = &self.backend
        {
            ep.sync_gang(view.mask);
            cache.flush_scope(view.tag);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distribution_covers_array_disjointly() {
        let ga = Ga::init(3);
        let h = ga.create(10);
        let d: Vec<_> = (0..3).map(|n| ga.distribution(h, n)).collect();
        assert_eq!(d[0], 0..4);
        assert_eq!(d[1], 4..8);
        assert_eq!(d[2], 8..10);
    }

    #[test]
    fn owner_queries() {
        let ga = Ga::init(3);
        let h = ga.create(10);
        assert_eq!(ga.owner_of(h, 0), 0);
        assert_eq!(ga.owner_of(h, 3), 0);
        assert_eq!(ga.owner_of(h, 4), 1);
        assert_eq!(ga.owner_of(h, 9), 2);
        let owners = ga.owners_of(h, 2, 7); // [2, 9)
        assert_eq!(owners, vec![(0, 2..4), (1, 4..8), (2, 8..9)]);
    }

    #[test]
    fn get_put_roundtrip_across_boundaries() {
        let ga = Ga::init(4);
        let h = ga.create(17);
        let data: Vec<f64> = (0..9).map(|x| x as f64).collect();
        ga.put(h, 3, &data);
        assert_eq!(ga.get(h, 3, 9), data);
        // Unwritten parts stay zero.
        assert_eq!(ga.get(h, 0, 3), vec![0.0; 3]);
    }

    #[test]
    fn acc_accumulates_with_alpha() {
        let ga = Ga::init(2);
        let h = ga.create(6);
        ga.acc(h, 1, &[1.0, 1.0, 1.0, 1.0], 2.0);
        ga.acc(h, 3, &[10.0], 1.0);
        assert_eq!(ga.snapshot(h), vec![0.0, 2.0, 2.0, 12.0, 2.0, 0.0]);
    }

    #[test]
    fn acc_local_only_touches_owned_part() {
        let ga = Ga::init(2);
        let h = ga.create(8); // node0: 0..4, node1: 4..8
        let data = vec![1.0; 6]; // global [1, 7)
        ga.acc_local(h, 0, 1, &data, 1.0);
        assert_eq!(ga.snapshot(h), vec![0.0, 1.0, 1.0, 1.0, 0.0, 0.0, 0.0, 0.0]);
        ga.acc_local(h, 1, 1, &data, 1.0);
        assert_eq!(ga.snapshot(h), vec![0.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 0.0]);
        // Sum of per-owner acc_local == one global acc.
        let ga2 = Ga::init(2);
        let h2 = ga2.create(8);
        ga2.acc(h2, 1, &data, 1.0);
        assert_eq!(ga.snapshot(h), ga2.snapshot(h2));
    }

    #[test]
    fn nxtval_monotone() {
        let ga = Ga::init(1);
        assert_eq!(ga.nxtval(), 0);
        assert_eq!(ga.nxtval(), 1);
        ga.nxtval_reset();
        assert_eq!(ga.nxtval(), 0);
        assert_eq!(ga.stats().nxtvals(), 3);
    }

    #[test]
    fn stats_count_bytes() {
        let ga = Ga::init(2);
        let h = ga.create(10);
        ga.get(h, 0, 5);
        ga.acc(h, 0, &[1.0; 4], 1.0);
        assert_eq!(ga.stats().get_bytes(), 40);
        assert_eq!(ga.stats().acc_bytes(), 32);
        assert_eq!(ga.stats().gets(), 1);
    }

    #[test]
    fn concurrent_accs_are_atomic() {
        use std::sync::Arc;
        let ga = Arc::new(Ga::init(3));
        let h = ga.create(32);
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let ga = ga.clone();
                std::thread::spawn(move || {
                    for _ in 0..250 {
                        ga.acc(h, 0, &vec![1.0; 32], 1.0);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert!(ga.snapshot(h).iter().all(|&x| x == 1000.0));
    }
}
