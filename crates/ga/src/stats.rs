//! Operation counters for auditing executions (how many gets/accs/nxtvals
//! a given execution model issued, and how many bytes moved).

use std::sync::atomic::{AtomicU64, Ordering};

/// Thread-safe operation counters.
#[derive(Debug, Default)]
pub struct GaStats {
    gets: AtomicU64,
    get_bytes: AtomicU64,
    puts: AtomicU64,
    put_bytes: AtomicU64,
    accs: AtomicU64,
    acc_bytes: AtomicU64,
    nxtvals: AtomicU64,
    local_bytes: AtomicU64,
    remote_bytes: AtomicU64,
}

impl GaStats {
    pub(crate) fn record_get(&self, bytes: usize) {
        self.gets.fetch_add(1, Ordering::Relaxed);
        self.get_bytes.fetch_add(bytes as u64, Ordering::Relaxed);
    }
    pub(crate) fn record_put(&self, bytes: usize) {
        self.puts.fetch_add(1, Ordering::Relaxed);
        self.put_bytes.fetch_add(bytes as u64, Ordering::Relaxed);
    }
    pub(crate) fn record_acc(&self, bytes: usize) {
        self.accs.fetch_add(1, Ordering::Relaxed);
        self.acc_bytes.fetch_add(bytes as u64, Ordering::Relaxed);
    }
    pub(crate) fn record_nxtval(&self) {
        self.nxtvals.fetch_add(1, Ordering::Relaxed);
    }
    /// Split the bytes of one operation by whether they stayed on the
    /// calling rank or crossed rank boundaries. The in-process backend
    /// counts everything as local (there is no wire); the distributed
    /// backend splits by shard ownership.
    pub(crate) fn record_locality(&self, local: usize, remote: usize) {
        self.local_bytes.fetch_add(local as u64, Ordering::Relaxed);
        self.remote_bytes
            .fetch_add(remote as u64, Ordering::Relaxed);
    }

    /// Number of `get` operations.
    pub fn gets(&self) -> u64 {
        self.gets.load(Ordering::Relaxed)
    }
    /// Bytes read by `get` operations.
    pub fn get_bytes(&self) -> u64 {
        self.get_bytes.load(Ordering::Relaxed)
    }
    /// Number of `put` operations.
    pub fn puts(&self) -> u64 {
        self.puts.load(Ordering::Relaxed)
    }
    /// Bytes written by `put` operations.
    pub fn put_bytes(&self) -> u64 {
        self.put_bytes.load(Ordering::Relaxed)
    }
    /// Number of accumulate operations.
    pub fn accs(&self) -> u64 {
        self.accs.load(Ordering::Relaxed)
    }
    /// Bytes accumulated.
    pub fn acc_bytes(&self) -> u64 {
        self.acc_bytes.load(Ordering::Relaxed)
    }
    /// Number of NXTVAL acquisitions.
    pub fn nxtvals(&self) -> u64 {
        self.nxtvals.load(Ordering::Relaxed)
    }
    /// Bytes of get/put/acc traffic whose owner was the calling rank.
    pub fn local_bytes(&self) -> u64 {
        self.local_bytes.load(Ordering::Relaxed)
    }
    /// Bytes of get/put/acc traffic that crossed rank boundaries.
    pub fn remote_bytes(&self) -> u64 {
        self.remote_bytes.load(Ordering::Relaxed)
    }
}
