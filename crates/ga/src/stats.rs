//! Operation counters for auditing executions (how many gets/accs/nxtvals
//! a given execution model issued, and how many bytes moved).

use std::sync::atomic::{AtomicU64, Ordering};

/// Thread-safe operation counters.
#[derive(Debug, Default)]
pub struct GaStats {
    gets: AtomicU64,
    get_bytes: AtomicU64,
    puts: AtomicU64,
    put_bytes: AtomicU64,
    accs: AtomicU64,
    acc_bytes: AtomicU64,
    nxtvals: AtomicU64,
    local_bytes: AtomicU64,
    remote_bytes: AtomicU64,
    cache_hits: AtomicU64,
    cache_joins: AtomicU64,
    cache_misses: AtomicU64,
    cache_invalidations: AtomicU64,
    cache_hit_bytes: AtomicU64,
    remote_get_bytes: AtomicU64,
    stale_reads: AtomicU64,
    cache_retained: AtomicU64,
}

impl GaStats {
    pub(crate) fn record_get(&self, bytes: usize) {
        self.gets.fetch_add(1, Ordering::Relaxed);
        self.get_bytes.fetch_add(bytes as u64, Ordering::Relaxed);
    }
    pub(crate) fn record_put(&self, bytes: usize) {
        self.puts.fetch_add(1, Ordering::Relaxed);
        self.put_bytes.fetch_add(bytes as u64, Ordering::Relaxed);
    }
    pub(crate) fn record_acc(&self, bytes: usize) {
        self.accs.fetch_add(1, Ordering::Relaxed);
        self.acc_bytes.fetch_add(bytes as u64, Ordering::Relaxed);
    }
    pub(crate) fn record_nxtval(&self) {
        self.nxtvals.fetch_add(1, Ordering::Relaxed);
    }
    /// Split the bytes of one operation by whether they stayed on the
    /// calling rank or crossed rank boundaries. The in-process backend
    /// counts everything as local (there is no wire); the distributed
    /// backend splits by shard ownership.
    pub(crate) fn record_locality(&self, local: usize, remote: usize) {
        self.local_bytes.fetch_add(local as u64, Ordering::Relaxed);
        self.remote_bytes
            .fetch_add(remote as u64, Ordering::Relaxed);
    }

    /// Number of `get` operations.
    pub fn gets(&self) -> u64 {
        self.gets.load(Ordering::Relaxed)
    }
    /// Bytes read by `get` operations.
    pub fn get_bytes(&self) -> u64 {
        self.get_bytes.load(Ordering::Relaxed)
    }
    /// Number of `put` operations.
    pub fn puts(&self) -> u64 {
        self.puts.load(Ordering::Relaxed)
    }
    /// Bytes written by `put` operations.
    pub fn put_bytes(&self) -> u64 {
        self.put_bytes.load(Ordering::Relaxed)
    }
    /// Number of accumulate operations.
    pub fn accs(&self) -> u64 {
        self.accs.load(Ordering::Relaxed)
    }
    /// Bytes accumulated.
    pub fn acc_bytes(&self) -> u64 {
        self.acc_bytes.load(Ordering::Relaxed)
    }
    /// Number of NXTVAL acquisitions.
    pub fn nxtvals(&self) -> u64 {
        self.nxtvals.load(Ordering::Relaxed)
    }
    /// Bytes of get/put/acc traffic whose owner was the calling rank.
    pub fn local_bytes(&self) -> u64 {
        self.local_bytes.load(Ordering::Relaxed)
    }
    /// Bytes of get/put/acc traffic that crossed rank boundaries.
    pub fn remote_bytes(&self) -> u64 {
        self.remote_bytes.load(Ordering::Relaxed)
    }

    // ---- tile-cache counters (distributed read path) ----

    pub(crate) fn record_cache_hit(&self, bytes: usize) {
        self.cache_hits.fetch_add(1, Ordering::Relaxed);
        self.cache_hit_bytes
            .fetch_add(bytes as u64, Ordering::Relaxed);
    }
    pub(crate) fn record_cache_join(&self, bytes: usize) {
        self.cache_joins.fetch_add(1, Ordering::Relaxed);
        self.cache_hit_bytes
            .fetch_add(bytes as u64, Ordering::Relaxed);
    }
    pub(crate) fn record_cache_miss(&self) {
        self.cache_misses.fetch_add(1, Ordering::Relaxed);
    }
    pub(crate) fn record_cache_invalidations(&self, n: u64) {
        self.cache_invalidations.fetch_add(n, Ordering::Relaxed);
    }
    pub(crate) fn record_remote_get_bytes(&self, bytes: usize) {
        self.remote_get_bytes
            .fetch_add(bytes as u64, Ordering::Relaxed);
    }
    pub(crate) fn record_stale_read(&self) {
        self.stale_reads.fetch_add(1, Ordering::Relaxed);
    }
    pub(crate) fn record_cache_retained(&self, n: u64) {
        self.cache_retained.fetch_add(n, Ordering::Relaxed);
    }

    /// Gets served entirely from the local tile cache.
    pub fn cache_hits(&self) -> u64 {
        self.cache_hits.load(Ordering::Relaxed)
    }
    /// Gets that joined an in-flight fill of the same block and shared
    /// its wire transfer.
    pub fn cache_joins(&self) -> u64 {
        self.cache_joins.load(Ordering::Relaxed)
    }
    /// Gets that missed the cache and fetched over the wire.
    pub fn cache_misses(&self) -> u64 {
        self.cache_misses.load(Ordering::Relaxed)
    }
    /// Cached blocks dropped because a local or incoming Put/Acc
    /// overlapped them (or a sync flushed them).
    pub fn cache_invalidations(&self) -> u64 {
        self.cache_invalidations.load(Ordering::Relaxed)
    }
    /// Bytes served from cached blocks (hits and joins).
    pub fn cache_hit_bytes(&self) -> u64 {
        self.cache_hit_bytes.load(Ordering::Relaxed)
    }
    /// Remote bytes actually requested from the comm endpoint by the get
    /// path — reconciles against the endpoint's `get_req_bytes`.
    pub fn remote_get_bytes(&self) -> u64 {
        self.remote_get_bytes.load(Ordering::Relaxed)
    }
    /// Verified cache hits whose cached block differed from the owner's
    /// shard (must stay zero; counted only in `verify_reads` mode).
    pub fn stale_reads(&self) -> u64 {
        self.stale_reads.load(Ordering::Relaxed)
    }
    /// Entries of pinned (read-mostly) arrays that survived a sync
    /// flush, summed over flushes — the epoch-retention payoff.
    pub fn cache_retained(&self) -> u64 {
        self.cache_retained.load(Ordering::Relaxed)
    }
}
