//! Per-rank read-through tile cache for distributed GA gets.
//!
//! CCSD reads are block-shaped and read-mostly: within one execution the
//! `t2`/`v` operand tensors never change, and many chains re-fetch the
//! same blocks. The cache keys completed gets by `(array, offset, len)`
//! — the TCE hash-block identity — and serves repeats from local memory,
//! turning the dominant wire cost into a memcpy.
//!
//! Coherence (documented in DESIGN.md §4.6) is invalidate-on-mutate plus
//! flush-at-sync: any local Put/Acc and any *incoming* Put/Acc applied to
//! this rank's shard drops every overlapping entry immediately (so a
//! rank always reads its own writes, and reads of locally-owned data
//! mutated by a peer refetch), while third-party mutations to other
//! ranks' shards become visible exactly where GA's relaxed model makes
//! them visible: at `sync`, which flushes the whole cache.
//!
//! Request coalescing lives here too: the first reader of an uncached
//! block installs an in-flight [`Fill`] and owns the wire transfer;
//! later readers of the same block park a [`Waiter`] on it, and the one
//! completion serves everyone. (The comm endpoint coalesces identical
//! per-owner *pieces* as a second line of defense; this level merges
//! whole-block requests before they ever split by owner.)

use crate::stats::GaStats;
use crate::GaGetCallback;
use parking_lot::Mutex;
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::Arc;

/// Tile-cache tuning knobs.
#[derive(Debug, Clone)]
pub struct TileCacheConfig {
    /// Master switch; `false` reproduces the uncached PR-5 read path.
    pub enabled: bool,
    /// Byte budget for cached blocks; FIFO eviction beyond it (default
    /// 256 MiB — comfortably the working set of the bench scales).
    pub capacity_bytes: usize,
    /// Paranoia mode for chaos gates: every hit also fetches the block
    /// fresh from its owners and counts a `stale_read` on mismatch.
    pub verify_reads: bool,
}

impl Default for TileCacheConfig {
    fn default() -> Self {
        Self {
            enabled: true,
            capacity_bytes: 256 * 1024 * 1024,
            verify_reads: false,
        }
    }
}

/// Cache key: the block identity of one get.
type Key = (usize, usize, usize); // (array, offset, len)

/// A reader parked on an in-flight fill: its destination buffer and
/// completion callback, served by the fill owner's completion.
pub(crate) struct Waiter {
    pub buf: Vec<f64>,
    pub cb: GaGetCallback,
}

/// One in-flight block fetch that later identical reads coalesce onto.
pub(crate) struct Fill {
    key: Key,
    waiters: Mutex<Vec<Waiter>>,
}

enum Slot {
    Ready(Arc<Vec<f64>>),
    Filling(Arc<Fill>),
}

struct CacheState {
    map: HashMap<Key, Slot>,
    /// FIFO eviction order of Ready entries.
    order: VecDeque<Key>,
    bytes: usize,
    /// Arrays whose entries survive the `sync` flush (epoch-tagged
    /// retention for read-mostly operands). Invalidate-on-mutate still
    /// applies to them unconditionally.
    pinned: HashSet<usize>,
}

/// Outcome of a cache lookup; buffer and callback flow back to the
/// caller on the paths where the caller still runs the transfer.
pub(crate) enum Lookup {
    /// Cached: copy `data` into `buf` and complete.
    Hit {
        data: Arc<Vec<f64>>,
        buf: Vec<f64>,
        cb: GaGetCallback,
    },
    /// Parked on an in-flight fill; the fill owner completes this reader.
    Joined,
    /// Miss: the caller owns the transfer and must call
    /// [`TileCache::complete`] with this fill when the block lands.
    Fill {
        fill: Arc<Fill>,
        buf: Vec<f64>,
        cb: GaGetCallback,
    },
}

/// The per-rank read-through cache. Shared between the owning `Ga` (read
/// path) and its `DistStore` (invalidation on incoming mutations).
pub struct TileCache {
    cfg: TileCacheConfig,
    stats: Arc<GaStats>,
    state: Mutex<CacheState>,
}

impl TileCache {
    pub(crate) fn new(cfg: TileCacheConfig, stats: Arc<GaStats>) -> Arc<Self> {
        Arc::new(Self {
            cfg,
            stats,
            state: Mutex::new(CacheState {
                map: HashMap::new(),
                order: VecDeque::new(),
                bytes: 0,
                pinned: HashSet::new(),
            }),
        })
    }

    pub(crate) fn enabled(&self) -> bool {
        self.cfg.enabled
    }

    pub(crate) fn verify_reads(&self) -> bool {
        self.cfg.verify_reads
    }

    /// Look up `key`, registering as a waiter or installing a fresh fill
    /// on miss. Counters are recorded here; the caller acts on the
    /// returned variant.
    pub(crate) fn lookup(&self, key: Key, buf: Vec<f64>, cb: GaGetCallback) -> Lookup {
        let mut st = self.state.lock();
        match st.map.get(&key) {
            Some(Slot::Ready(data)) => {
                let data = data.clone();
                drop(st);
                self.stats.record_cache_hit(key.2 * 8);
                Lookup::Hit { data, buf, cb }
            }
            Some(Slot::Filling(fill)) => {
                fill.waiters.lock().push(Waiter { buf, cb });
                drop(st);
                self.stats.record_cache_join(key.2 * 8);
                Lookup::Joined
            }
            None => {
                let fill = Arc::new(Fill {
                    key,
                    waiters: Mutex::new(Vec::new()),
                });
                st.map.insert(key, Slot::Filling(fill.clone()));
                drop(st);
                self.stats.record_cache_miss();
                Lookup::Fill { fill, buf, cb }
            }
        }
    }

    /// Deposit a completed fill's block and collect its parked waiters.
    /// If the entry was invalidated (or replaced by a newer fill) while
    /// in flight, the block is *not* cached — the waiters still get the
    /// data they asked for, but no later read can hit the pre-mutation
    /// copy.
    pub(crate) fn complete(&self, fill: &Arc<Fill>, data: &[f64]) -> Vec<Waiter> {
        let mut st = self.state.lock();
        let still_ours = matches!(
            st.map.get(&fill.key),
            Some(Slot::Filling(f)) if Arc::ptr_eq(f, fill)
        );
        if still_ours {
            st.map
                .insert(fill.key, Slot::Ready(Arc::new(data.to_vec())));
            st.order.push_back(fill.key);
            st.bytes += fill.key.2 * 8;
            // FIFO eviction; in-flight fills are never evicted.
            while st.bytes > self.cfg.capacity_bytes {
                let Some(old) = st.order.pop_front() else {
                    break;
                };
                if matches!(st.map.get(&old), Some(Slot::Ready(_))) {
                    st.map.remove(&old);
                    st.bytes -= old.2 * 8;
                }
            }
        }
        // Waiters are taken under the cache lock so no new reader can
        // register between the map update and the drain.
        let waiters = std::mem::take(&mut *fill.waiters.lock());
        drop(st);
        waiters
    }

    /// Drop every entry of `array` overlapping `[offset, offset+len)` —
    /// called on local mutations *and* on incoming Put/Acc applied to
    /// this rank's shard. In-flight fills are detached (their completion
    /// will not be cached).
    pub(crate) fn invalidate_overlap(&self, array: usize, offset: usize, len: usize) {
        if !self.cfg.enabled || len == 0 {
            return;
        }
        let mut st = self.state.lock();
        let end = offset + len;
        let doomed: Vec<Key> = st
            .map
            .keys()
            .filter(|&&(a, o, l)| a == array && o < end && offset < o + l)
            .copied()
            .collect();
        let n = doomed.len() as u64;
        for key in doomed {
            if matches!(st.map.remove(&key), Some(Slot::Ready(_))) {
                st.bytes -= key.2 * 8;
            }
        }
        drop(st);
        if n > 0 {
            self.stats.record_cache_invalidations(n);
        }
    }

    /// Drop every entry of `array` (collective `zero`).
    pub(crate) fn invalidate_array(&self, array: usize) {
        if !self.cfg.enabled {
            return;
        }
        let mut st = self.state.lock();
        let doomed: Vec<Key> = st
            .map
            .keys()
            .filter(|&&(a, _, _)| a == array)
            .copied()
            .collect();
        let n = doomed.len() as u64;
        for key in doomed {
            if matches!(st.map.remove(&key), Some(Slot::Ready(_))) {
                st.bytes -= key.2 * 8;
            }
        }
        drop(st);
        if n > 0 {
            self.stats.record_cache_invalidations(n);
        }
    }

    /// Mark `array`'s entries as surviving the `sync` flush. The caller
    /// asserts the array is read-mostly between epochs: mutations this
    /// rank *sees* (its own Put/Acc/zero and incoming ones against its
    /// shard) still invalidate pinned entries immediately, but a peer's
    /// write to a *third* rank's shard stays invisible here until the
    /// array is unpinned — pin only arrays with no such writes (the
    /// CCSD input tensors between jobs), and gate with `verify_reads`
    /// where in doubt.
    pub(crate) fn pin_array(&self, array: usize) {
        self.state.lock().pinned.insert(array);
    }

    /// Undo [`TileCache::pin_array`] and drop the array's entries (they
    /// may be arbitrarily stale by the relaxed-model rules).
    pub(crate) fn unpin_array(&self, array: usize) {
        self.state.lock().pinned.remove(&array);
        self.invalidate_array(array);
    }

    /// The `sync` boundary, where GA's relaxed model makes every rank's
    /// mutations globally visible: drop every entry — except those of
    /// pinned arrays, which the owner vouched stay coherent across
    /// epochs (that retention is what lets repeat jobs over the same
    /// operands start warm). The production sync path is the scoped
    /// [`TileCache::flush_scope`]; this whole-cache variant remains for
    /// the unit tests.
    #[cfg(test)]
    pub(crate) fn flush(&self) {
        let mut st = self.state.lock();
        if st.pinned.is_empty() {
            let n = st.map.len() as u64;
            st.map.clear();
            st.order.clear();
            st.bytes = 0;
            drop(st);
            if n > 0 {
                self.stats.record_cache_invalidations(n);
            }
            return;
        }
        let CacheState {
            map,
            order,
            bytes,
            pinned,
        } = &mut *st;
        let before = map.len();
        let mut dropped_bytes = 0usize;
        map.retain(|&(a, _, l), slot| {
            if pinned.contains(&a) {
                return true;
            }
            if matches!(slot, Slot::Ready(_)) {
                dropped_bytes += l * 8;
            }
            false
        });
        order.retain(|k| map.contains_key(k));
        *bytes -= dropped_bytes;
        let flushed = (before - map.len()) as u64;
        let retained = map.len() as u64;
        drop(st);
        if flushed > 0 {
            self.stats.record_cache_invalidations(flushed);
        }
        if retained > 0 {
            self.stats.record_cache_retained(retained);
        }
    }

    /// The gang-scoped `sync` boundary: as [`TileCache::flush`], but
    /// restricted to arrays of one gang's id namespace. A gang's sync
    /// makes only *that* gang's mutations globally visible, so flushing
    /// another concurrent gang's entries here would be both needless and
    /// a cross-job perturbation (the cross-invalidation hazard the
    /// namespaced ids exist to prevent).
    pub(crate) fn flush_scope(&self, tag: u32) {
        let mut st = self.state.lock();
        let CacheState {
            map,
            order,
            bytes,
            pinned,
        } = &mut *st;
        let mut dropped_bytes = 0usize;
        let (mut flushed, mut retained) = (0u64, 0u64);
        map.retain(|&(a, _, l), slot| {
            if crate::distga::ns_tag(a) != tag {
                return true; // another gang's scope: untouched
            }
            if pinned.contains(&a) {
                retained += 1;
                return true;
            }
            if matches!(slot, Slot::Ready(_)) {
                dropped_bytes += l * 8;
            }
            flushed += 1;
            false
        });
        order.retain(|k| map.contains_key(k));
        *bytes -= dropped_bytes;
        drop(st);
        if flushed > 0 {
            self.stats.record_cache_invalidations(flushed);
        }
        if retained > 0 {
            self.stats.record_cache_retained(retained);
        }
    }

    /// Cached bytes right now (tests).
    #[cfg(test)]
    pub(crate) fn resident_bytes(&self) -> usize {
        self.state.lock().bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache(cap: usize) -> Arc<TileCache> {
        TileCache::new(
            TileCacheConfig {
                enabled: true,
                capacity_bytes: cap,
                verify_reads: false,
            },
            Arc::new(GaStats::default()),
        )
    }

    fn nop_cb() -> GaGetCallback {
        Box::new(|_| {})
    }

    #[test]
    fn miss_fill_hit_roundtrip() {
        let c = cache(1 << 20);
        let key = (0, 8, 4);
        let Lookup::Fill { fill, .. } = c.lookup(key, vec![0.0; 4], nop_cb()) else {
            panic!("first lookup must miss");
        };
        // A second reader of the same block parks on the fill.
        assert!(matches!(
            c.lookup(key, vec![0.0; 4], nop_cb()),
            Lookup::Joined
        ));
        let waiters = c.complete(&fill, &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(waiters.len(), 1);
        match c.lookup(key, vec![0.0; 4], nop_cb()) {
            Lookup::Hit { data, .. } => assert_eq!(*data, vec![1.0, 2.0, 3.0, 4.0]),
            _ => panic!("third lookup must hit"),
        }
        assert_eq!(c.stats.cache_hits(), 1);
        assert_eq!(c.stats.cache_joins(), 1);
        assert_eq!(c.stats.cache_misses(), 1);
    }

    #[test]
    fn overlap_invalidation_is_range_exact() {
        let c = cache(1 << 20);
        for off in [0usize, 10, 20] {
            let Lookup::Fill { fill, .. } = c.lookup((3, off, 10), vec![0.0; 10], nop_cb()) else {
                panic!("miss expected");
            };
            c.complete(&fill, &[off as f64; 10]);
        }
        // Touches [10, 20) only.
        c.invalidate_overlap(3, 15, 3);
        assert!(matches!(
            c.lookup((3, 0, 10), vec![0.0; 10], nop_cb()),
            Lookup::Hit { .. }
        ));
        assert!(matches!(
            c.lookup((3, 20, 10), vec![0.0; 10], nop_cb()),
            Lookup::Hit { .. }
        ));
        assert!(matches!(
            c.lookup((3, 10, 10), vec![0.0; 10], nop_cb()),
            Lookup::Fill { .. }
        ));
        // Other arrays untouched.
        c.invalidate_overlap(4, 0, 100);
        assert!(matches!(
            c.lookup((3, 0, 10), vec![0.0; 10], nop_cb()),
            Lookup::Hit { .. }
        ));
        assert_eq!(c.stats.cache_invalidations(), 1);
    }

    #[test]
    fn invalidated_fill_is_not_cached() {
        let c = cache(1 << 20);
        let key = (0, 0, 2);
        let Lookup::Fill { fill, .. } = c.lookup(key, vec![0.0; 2], nop_cb()) else {
            panic!("miss expected");
        };
        // Mutation lands while the fill is in flight.
        c.invalidate_overlap(0, 1, 1);
        let waiters = c.complete(&fill, &[9.0, 9.0]);
        assert!(waiters.is_empty());
        // The stale block must not have been cached.
        assert!(matches!(
            c.lookup(key, vec![0.0; 2], nop_cb()),
            Lookup::Fill { .. }
        ));
    }

    #[test]
    fn capacity_evicts_fifo() {
        let c = cache(3 * 10 * 8); // room for three 10-element blocks
        for off in [0usize, 10, 20, 30] {
            let Lookup::Fill { fill, .. } = c.lookup((0, off, 10), vec![0.0; 10], nop_cb()) else {
                panic!("miss expected");
            };
            c.complete(&fill, &[0.0; 10]);
        }
        assert!(c.resident_bytes() <= 3 * 10 * 8);
        // Oldest block evicted, newest resident.
        assert!(matches!(
            c.lookup((0, 0, 10), vec![0.0; 10], nop_cb()),
            Lookup::Fill { .. }
        ));
        assert!(matches!(
            c.lookup((0, 30, 10), vec![0.0; 10], nop_cb()),
            Lookup::Hit { .. }
        ));
    }

    #[test]
    fn pinned_arrays_survive_flush_but_not_mutation() {
        let c = cache(1 << 20);
        for (a, off) in [(1usize, 0usize), (1, 8), (2, 0)] {
            let Lookup::Fill { fill, .. } = c.lookup((a, off, 4), vec![0.0; 4], nop_cb()) else {
                panic!("miss expected");
            };
            c.complete(&fill, &[a as f64; 4]);
        }
        c.pin_array(1);
        c.flush();
        // Pinned array 1 stays warm; unpinned array 2 flushed.
        assert!(matches!(
            c.lookup((1, 0, 4), vec![0.0; 4], nop_cb()),
            Lookup::Hit { .. }
        ));
        assert!(matches!(
            c.lookup((1, 8, 4), vec![0.0; 4], nop_cb()),
            Lookup::Hit { .. }
        ));
        assert!(matches!(
            c.lookup((2, 0, 4), vec![0.0; 4], nop_cb()),
            Lookup::Fill { .. }
        ));
        assert_eq!(c.resident_bytes(), 2 * 4 * 8);
        assert_eq!(c.stats.cache_retained(), 2);
        // Invalidate-on-mutate still applies to pinned entries.
        c.invalidate_overlap(1, 0, 4);
        assert!(matches!(
            c.lookup((1, 0, 4), vec![0.0; 4], nop_cb()),
            Lookup::Fill { .. }
        ));
        // Unpinning drops the remaining entries of the array.
        c.unpin_array(1);
        assert!(matches!(
            c.lookup((1, 8, 4), vec![0.0; 4], nop_cb()),
            Lookup::Fill { .. }
        ));
        c.flush();
        assert_eq!(c.resident_bytes(), 0);
    }

    #[test]
    fn flush_empties_everything() {
        let c = cache(1 << 20);
        let Lookup::Fill { fill, .. } = c.lookup((1, 0, 4), vec![0.0; 4], nop_cb()) else {
            panic!("miss expected");
        };
        c.complete(&fill, &[1.0; 4]);
        c.flush();
        assert_eq!(c.resident_bytes(), 0);
        assert!(matches!(
            c.lookup((1, 0, 4), vec![0.0; 4], nop_cb()),
            Lookup::Fill { .. }
        ));
    }
}
