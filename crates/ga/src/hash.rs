//! The TCE hash index: block key -> `(offset, size)` within a 1-D array.
//!
//! TCE packs a block-sparse many-index tensor into a 1-D Global Array and
//! finds blocks through a hash table shipped alongside the array; the
//! generated code's `GET_HASH_BLOCK(d_a, buf, size, hash_a, key)` resolves
//! `key` in that table and fetches `size` elements at the resolved offset.
//! Here keys are the caller-computed canonical block indices.

use std::collections::HashMap;

/// Block key -> location index for one packed tensor.
#[derive(Debug, Default, Clone)]
pub struct HashIndex {
    map: HashMap<i64, (usize, usize)>,
    total: usize,
}

impl HashIndex {
    /// Empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a block of `size` elements under `key`, returning its offset.
    /// Panics if the key is already present.
    pub fn insert(&mut self, key: i64, size: usize) -> usize {
        let offset = self.total;
        let prev = self.map.insert(key, (offset, size));
        assert!(prev.is_none(), "duplicate block key {key}");
        self.total += size;
        offset
    }

    /// Look up `(offset, size)` for `key`.
    pub fn lookup(&self, key: i64) -> Option<(usize, usize)> {
        self.map.get(&key).copied()
    }

    /// Does the tensor store a block for `key`?
    pub fn contains(&self, key: i64) -> bool {
        self.map.contains_key(&key)
    }

    /// Total packed length (the size of the backing 1-D array).
    pub fn total_len(&self) -> usize {
        self.total
    }

    /// Number of stored blocks.
    pub fn num_blocks(&self) -> usize {
        self.map.len()
    }

    /// Iterate `(key, offset, size)` in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (i64, usize, usize)> + '_ {
        self.map.iter().map(|(&k, &(o, s))| (k, o, s))
    }
}

/// `GET_HASH_BLOCK`: resolve and fetch one block.
pub fn get_hash_block(ga: &crate::Ga, h: crate::GaHandle, idx: &HashIndex, key: i64) -> Vec<f64> {
    let (offset, size) = idx
        .lookup(key)
        .unwrap_or_else(|| panic!("no block for key {key}"));
    ga.get(h, offset, size)
}

/// `ADD_HASH_BLOCK`: resolve and atomically accumulate one block.
pub fn add_hash_block(
    ga: &crate::Ga,
    h: crate::GaHandle,
    idx: &HashIndex,
    key: i64,
    data: &[f64],
    alpha: f64,
) {
    let (offset, size) = idx
        .lookup(key)
        .unwrap_or_else(|| panic!("no block for key {key}"));
    assert_eq!(data.len(), size, "block size mismatch for key {key}");
    ga.acc(h, offset, data, alpha);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Ga;

    #[test]
    fn insert_packs_contiguously() {
        let mut idx = HashIndex::new();
        assert_eq!(idx.insert(42, 10), 0);
        assert_eq!(idx.insert(7, 5), 10);
        assert_eq!(idx.total_len(), 15);
        assert_eq!(idx.lookup(42), Some((0, 10)));
        assert_eq!(idx.lookup(7), Some((10, 5)));
        assert_eq!(idx.lookup(1), None);
        assert_eq!(idx.num_blocks(), 2);
    }

    #[test]
    #[should_panic]
    fn duplicate_key_panics() {
        let mut idx = HashIndex::new();
        idx.insert(1, 4);
        idx.insert(1, 4);
    }

    #[test]
    fn hash_block_get_add_roundtrip() {
        let mut idx = HashIndex::new();
        idx.insert(100, 4);
        idx.insert(200, 4);
        let ga = Ga::init(2);
        let h = ga.create(idx.total_len());
        add_hash_block(&ga, h, &idx, 200, &[1.0, 2.0, 3.0, 4.0], 2.0);
        assert_eq!(get_hash_block(&ga, h, &idx, 200), vec![2.0, 4.0, 6.0, 8.0]);
        assert_eq!(get_hash_block(&ga, h, &idx, 100), vec![0.0; 4]);
    }

    #[test]
    #[should_panic]
    fn add_wrong_size_panics() {
        let mut idx = HashIndex::new();
        idx.insert(1, 4);
        let ga = Ga::init(1);
        let h = ga.create(4);
        add_hash_block(&ga, h, &idx, 1, &[0.0; 3], 1.0);
    }
}
