//! Pure-arithmetic block distribution.
//!
//! `Distribution` answers the ownership questions (`ga_distribution`,
//! `owner of offset`, `split range by owner`) without allocating any data.
//! The inspection phase and the discrete-event simulator work at
//! paper scale (tensors of tens of gigabytes) where materializing the
//! arrays is neither possible nor needed; they use this type directly,
//! while [`crate::Ga`] uses it internally for its real arrays.

use crate::NodeId;
use std::ops::Range;

/// GA's default regular block distribution of `len` elements over
/// `nodes` nodes: equal chunks, remainder on the last node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Distribution {
    len: usize,
    starts: Vec<usize>,
}

impl Distribution {
    /// Build the distribution.
    pub fn new(len: usize, nodes: usize) -> Self {
        assert!(nodes >= 1, "need at least one node");
        let per = len.div_ceil(nodes).max(1);
        let mut starts = Vec::with_capacity(nodes + 1);
        let mut off = 0;
        for _ in 0..nodes {
            starts.push(off);
            off += per.min(len - off);
        }
        starts.push(len);
        Self { len, starts }
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the array is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of nodes.
    pub fn nodes(&self) -> usize {
        self.starts.len() - 1
    }

    /// Global offset range owned by `node`.
    pub fn range_of(&self, node: NodeId) -> Range<usize> {
        self.starts[node]..self.starts[node + 1]
    }

    /// Owner of one global offset.
    pub fn owner_of(&self, offset: usize) -> NodeId {
        assert!(
            offset < self.len,
            "offset {offset} out of bounds ({})",
            self.len
        );
        self.starts.partition_point(|&s| s <= offset) - 1
    }

    /// Split `[offset, offset+len)` into per-owner `(node, subrange)`.
    pub fn owners_of(&self, offset: usize, len: usize) -> Vec<(NodeId, Range<usize>)> {
        assert!(offset + len <= self.len, "range out of bounds");
        let mut out = Vec::new();
        let mut cur = offset;
        let end = offset + len;
        while cur < end {
            let node = self.starts.partition_point(|&s| s <= cur) - 1;
            let seg_end = self.starts[node + 1].min(end);
            out.push((node, cur..seg_end));
            cur = seg_end;
        }
        out
    }

    /// Start offsets per node (length `nodes + 1`, last entry == `len`).
    pub fn starts(&self) -> &[usize] {
        &self.starts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn even_split_with_remainder() {
        let d = Distribution::new(10, 3);
        assert_eq!(d.range_of(0), 0..4);
        assert_eq!(d.range_of(1), 4..8);
        assert_eq!(d.range_of(2), 8..10);
        assert_eq!(d.owner_of(0), 0);
        assert_eq!(d.owner_of(7), 1);
        assert_eq!(d.owner_of(9), 2);
    }

    #[test]
    fn owners_split_ranges() {
        let d = Distribution::new(10, 3);
        assert_eq!(d.owners_of(2, 7), vec![(0, 2..4), (1, 4..8), (2, 8..9)]);
        assert_eq!(d.owners_of(4, 0), vec![]);
    }

    #[test]
    fn more_nodes_than_elements() {
        let d = Distribution::new(2, 4);
        assert_eq!(d.owner_of(0), 0);
        assert_eq!(d.owner_of(1), 1);
        assert_eq!(d.range_of(2), 2..2);
        assert_eq!(d.range_of(3), 2..2);
    }

    #[test]
    fn huge_virtual_array_costs_nothing() {
        // 18 GB of doubles: structural queries only.
        let n = 2_400_000_000usize;
        let d = Distribution::new(n, 32);
        assert_eq!(d.nodes(), 32);
        assert_eq!(d.owner_of(n - 1), 31);
        assert_eq!(d.owners_of(0, n).len(), 32);
    }
}
