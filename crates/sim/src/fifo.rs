//! Serially-reusable FIFO resources and the NIC model built on them.
//!
//! These are *arithmetic* resources: because service durations are known at
//! request time and the discipline is FIFO, the grant/finish times can be
//! computed immediately without posting intermediate events.

use crate::SimTime;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A single-server FIFO queue (e.g. one NIC serializer, the NXTVAL
/// counter's owner-side service loop).
///
/// Queue order is *call order*: requests are served in the order
/// `acquire` is invoked, each starting no earlier than its own `now`.
/// Callers driven by an event loop issue requests in nearly
/// non-decreasing time order; the small reorderings introduced by
/// arithmetic fast-forwarding (a rank computing several microseconds
/// ahead before its next event) are an accepted approximation.
#[derive(Debug, Clone, Default)]
pub struct FifoServer {
    free_at: SimTime,
    busy: SimTime,
    served: u64,
}

impl FifoServer {
    /// New idle server.
    pub fn new() -> Self {
        Self::default()
    }

    /// Request `dur` of service starting no earlier than `now`.
    /// Returns `(start, end)` of the granted service interval.
    pub fn acquire(&mut self, now: SimTime, dur: SimTime) -> (SimTime, SimTime) {
        let start = now.max(self.free_at);
        let end = start + dur;
        self.free_at = end;
        self.busy += dur;
        self.served += 1;
        (start, end)
    }

    /// Time at which the server next becomes idle.
    pub fn free_at(&self) -> SimTime {
        self.free_at
    }

    /// Total busy time granted so far.
    pub fn busy_time(&self) -> SimTime {
        self.busy
    }

    /// Number of requests served.
    pub fn served(&self) -> u64 {
        self.served
    }
}

/// A `k`-server FIFO queue: requests are granted to the earliest-available
/// server (e.g. a pool of DMA engines, or the compute cores of the baseline
/// model when used in aggregate).
#[derive(Debug, Clone)]
pub struct MultiServer {
    free: BinaryHeap<Reverse<SimTime>>,
    busy: SimTime,
}

impl MultiServer {
    /// New pool of `k >= 1` idle servers.
    pub fn new(k: usize) -> Self {
        assert!(k >= 1, "MultiServer needs at least one server");
        Self {
            free: (0..k).map(|_| Reverse(0)).collect(),
            busy: 0,
        }
    }

    /// Request `dur` of service starting no earlier than `now` on the first
    /// available server; returns `(start, end)`.
    pub fn acquire(&mut self, now: SimTime, dur: SimTime) -> (SimTime, SimTime) {
        let Reverse(avail) = self.free.pop().expect("pool is never empty");
        let start = now.max(avail);
        let end = start + dur;
        self.free.push(Reverse(end));
        self.busy += dur;
        (start, end)
    }

    /// Total busy time across all servers.
    pub fn busy_time(&self) -> SimTime {
        self.busy
    }
}

/// Network interface: a FIFO byte serializer plus a constant wire latency.
///
/// A message of `b` bytes issued at `now` finishes serializing at
/// `fifo(now, b/bandwidth)` and arrives at the destination one latency
/// later. Only the *sender* side serializes — the contention this model
/// needs to capture is many ranks pulling blocks from one Global Arrays
/// owner node, which queues on that owner's NIC.
#[derive(Debug, Clone)]
pub struct Nic {
    server: FifoServer,
    latency: SimTime,
    bytes_per_ns: f64,
    bytes_sent: u64,
}

impl Nic {
    /// `bandwidth_gbs` is in gigabytes per second; `latency` in ns.
    pub fn new(bandwidth_gbs: f64, latency: SimTime) -> Self {
        assert!(bandwidth_gbs > 0.0);
        Self {
            server: FifoServer::new(),
            latency,
            bytes_per_ns: bandwidth_gbs, // 1 GB/s == 1 byte/ns
            bytes_sent: 0,
        }
    }

    /// Serialization time for a message of `bytes`.
    pub fn wire_time(&self, bytes: u64) -> SimTime {
        (bytes as f64 / self.bytes_per_ns).round() as SimTime
    }

    /// Enqueue a `bytes`-sized message at `now`; returns the arrival time
    /// at the destination.
    pub fn send(&mut self, now: SimTime, bytes: u64) -> SimTime {
        self.bytes_sent += bytes;
        let (_, end) = self.server.acquire(now, self.wire_time(bytes));
        end + self.latency
    }

    /// One-way latency.
    pub fn latency(&self) -> SimTime {
        self.latency
    }

    /// Time when the serializer is next idle.
    pub fn free_at(&self) -> SimTime {
        self.server.free_at()
    }

    /// Total bytes enqueued.
    pub fn bytes_sent(&self) -> u64 {
        self.bytes_sent
    }

    /// Total serializer busy time.
    pub fn busy_time(&self) -> SimTime {
        self.server.busy_time()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_serializes_back_to_back() {
        let mut s = FifoServer::new();
        assert_eq!(s.acquire(0, 10), (0, 10));
        assert_eq!(s.acquire(0, 5), (10, 15));
        assert_eq!(s.acquire(20, 5), (20, 25)); // idle gap
        assert_eq!(s.busy_time(), 20);
        assert_eq!(s.served(), 3);
    }

    #[test]
    fn multi_server_runs_k_in_parallel() {
        let mut m = MultiServer::new(2);
        assert_eq!(m.acquire(0, 10), (0, 10));
        assert_eq!(m.acquire(0, 10), (0, 10));
        assert_eq!(m.acquire(0, 10), (10, 20)); // third waits
        assert_eq!(m.busy_time(), 30);
    }

    #[test]
    #[should_panic]
    fn zero_servers_rejected() {
        MultiServer::new(0);
    }

    #[test]
    fn nic_adds_latency_after_serialization() {
        // 1 GB/s = 1 byte/ns; 1000-byte message = 1000 ns wire time.
        let mut n = Nic::new(1.0, 500);
        assert_eq!(n.send(0, 1000), 1500);
        // Second message queues behind the first.
        assert_eq!(n.send(0, 1000), 2500);
        assert_eq!(n.bytes_sent(), 2000);
    }

    #[test]
    fn nic_contention_grows_linearly() {
        // The mechanism behind the original code's scalability ceiling:
        // k concurrent gets from one owner take k times the wire time.
        let mut n = Nic::new(4.0, 1000);
        let mut last = 0;
        for _ in 0..8 {
            last = n.send(0, 40_000); // 10_000 ns each at 4 B/ns
        }
        assert_eq!(last, 8 * 10_000 + 1000);
    }
}
