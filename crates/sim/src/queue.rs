//! Deterministic event queue and driver loop.

use crate::SimTime;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// An event scheduled at a time, ordered by `(time, seq)` where `seq` is the
/// insertion sequence number — ties fire in insertion order, which keeps
/// simulations deterministic regardless of payload type.
struct Item<E> {
    time: SimTime,
    seq: u64,
    ev: E,
}

impl<E> PartialEq for Item<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Item<E> {}
impl<E> PartialOrd for Item<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Item<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

/// Min-heap of future events.
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Item<E>>>,
    seq: u64,
    now: SimTime,
    popped: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Empty queue at time zero.
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            seq: 0,
            now: 0,
            popped: 0,
        }
    }

    /// Current simulation time (the time of the last popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total number of events processed so far.
    pub fn events_processed(&self) -> u64 {
        self.popped
    }

    /// Schedule `ev` at absolute time `at`. Events scheduled in the past
    /// fire "now" (they are clamped to the current time) — this makes
    /// arithmetic-resource completions safe to post directly.
    pub fn post(&mut self, at: SimTime, ev: E) {
        let t = at.max(self.now);
        self.heap.push(Reverse(Item {
            time: t,
            seq: self.seq,
            ev,
        }));
        self.seq += 1;
    }

    /// Schedule `ev` after a delay relative to the current time.
    pub fn post_in(&mut self, delay: SimTime, ev: E) {
        self.post(self.now + delay, ev);
    }

    /// Pop the next event, advancing the clock.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let Reverse(item) = self.heap.pop()?;
        debug_assert!(item.time >= self.now, "time went backwards");
        self.now = item.time;
        self.popped += 1;
        Some((item.time, item.ev))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

/// A simulation model driven by [`run`]: a state machine receiving events.
pub trait SimModel {
    /// Event payload type.
    type Ev;
    /// Handle one event; may post follow-up events into `q`.
    fn handle(&mut self, now: SimTime, ev: Self::Ev, q: &mut EventQueue<Self::Ev>);
}

/// Drain the queue to completion, returning the final simulation time.
pub fn run<M: SimModel>(model: &mut M, q: &mut EventQueue<M::Ev>) -> SimTime {
    while let Some((t, ev)) = q.pop() {
        model.handle(t, ev, q);
    }
    q.now()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_by_time_then_seq() {
        let mut q = EventQueue::new();
        q.post(10, "b");
        q.post(5, "a");
        q.post(10, "c");
        assert_eq!(q.pop(), Some((5, "a")));
        assert_eq!(q.pop(), Some((10, "b")));
        assert_eq!(q.pop(), Some((10, "c")));
        assert_eq!(q.pop(), None);
        assert_eq!(q.events_processed(), 3);
    }

    #[test]
    fn past_events_clamp_to_now() {
        let mut q = EventQueue::new();
        q.post(100, ());
        q.pop();
        q.post(50, ()); // in the past
        assert_eq!(q.pop(), Some((100, ())));
    }

    #[test]
    fn post_in_is_relative() {
        let mut q = EventQueue::new();
        q.post(10, 0u32);
        q.pop();
        q.post_in(5, 1u32);
        assert_eq!(q.pop(), Some((15, 1)));
    }

    #[test]
    fn run_drives_model_to_quiescence() {
        // A model that counts down: event k posts event k-1 one tick later.
        struct Countdown {
            fired: Vec<u32>,
        }
        impl SimModel for Countdown {
            type Ev = u32;
            fn handle(&mut self, _now: SimTime, ev: u32, q: &mut EventQueue<u32>) {
                self.fired.push(ev);
                if ev > 0 {
                    q.post_in(1, ev - 1);
                }
            }
        }
        let mut m = Countdown { fired: vec![] };
        let mut q = EventQueue::new();
        q.post(0, 3);
        let end = run(&mut m, &mut q);
        assert_eq!(m.fired, vec![3, 2, 1, 0]);
        assert_eq!(end, 3);
    }
}
