//! FIFO mutex resource.
//!
//! Models the pthread mutex that protects the WRITE critical section in the
//! paper's variants: "the work performed by the WRITE_C task is treated as
//! a critical region that is protected by mutexes in order to run
//! atomically". Unlike [`crate::FifoServer`], hold durations are *not*
//! known at acquisition time (the critical section may itself contend on
//! the memory bus), so this is an explicit state machine: `lock` either
//! grants immediately or queues the waiter; `unlock` hands the mutex to the
//! next waiter, whom the engine then resumes.

use std::collections::VecDeque;

/// Identifier chosen by the engine for a waiting entity (task id, rank id).
pub type WaiterId = u64;

/// A FIFO mutex.
#[derive(Debug, Clone, Default)]
pub struct MutexResource {
    holder: Option<WaiterId>,
    waiters: VecDeque<WaiterId>,
    acquisitions: u64,
    max_queue: usize,
}

impl MutexResource {
    /// New unlocked mutex.
    pub fn new() -> Self {
        Self::default()
    }

    /// Attempt to lock for `who`. Returns `true` when the lock is granted
    /// immediately; otherwise `who` is queued and will be returned by a
    /// future [`MutexResource::unlock`].
    pub fn lock(&mut self, who: WaiterId) -> bool {
        if self.holder.is_none() {
            self.holder = Some(who);
            self.acquisitions += 1;
            true
        } else {
            self.waiters.push_back(who);
            self.max_queue = self.max_queue.max(self.waiters.len());
            false
        }
    }

    /// Unlock; the caller must be the holder (checked). Returns the next
    /// waiter to whom the lock is granted, if any — the engine must resume
    /// that waiter.
    pub fn unlock(&mut self, who: WaiterId) -> Option<WaiterId> {
        assert_eq!(self.holder, Some(who), "unlock by non-holder");
        self.holder = self.waiters.pop_front();
        if let Some(next) = self.holder {
            self.acquisitions += 1;
            Some(next)
        } else {
            None
        }
    }

    /// Current holder, if locked.
    pub fn holder(&self) -> Option<WaiterId> {
        self.holder
    }

    /// Number of queued waiters.
    pub fn queue_len(&self) -> usize {
        self.waiters.len()
    }

    /// Total number of successful acquisitions (a proxy for the
    /// "system wide operations required to lock and unlock the mutex"
    /// that the paper counts against variant v3).
    pub fn acquisitions(&self) -> u64 {
        self.acquisitions
    }

    /// Longest queue observed.
    pub fn max_queue(&self) -> usize {
        self.max_queue
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grants_immediately_when_free() {
        let mut m = MutexResource::new();
        assert!(m.lock(1));
        assert_eq!(m.holder(), Some(1));
    }

    #[test]
    fn queues_fifo() {
        let mut m = MutexResource::new();
        assert!(m.lock(1));
        assert!(!m.lock(2));
        assert!(!m.lock(3));
        assert_eq!(m.queue_len(), 2);
        assert_eq!(m.unlock(1), Some(2));
        assert_eq!(m.unlock(2), Some(3));
        assert_eq!(m.unlock(3), None);
        assert_eq!(m.acquisitions(), 3);
        assert_eq!(m.max_queue(), 2);
    }

    #[test]
    #[should_panic]
    fn unlock_by_stranger_panics() {
        let mut m = MutexResource::new();
        m.lock(1);
        m.unlock(2);
    }
}
