//! Exact processor-sharing resource.
//!
//! Models a per-node memory bus: when `n` memory-bound tasks execute
//! concurrently on a node, each streams at `capacity / n`. This is the
//! mechanism that makes SORT/WRITE-heavy variants (and the original code's
//! many concurrent `GET`+`SORT` ranks) stop scaling as cores/node grows —
//! the effect visible in Figure 9.
//!
//! Because completion times change whenever a job joins or leaves, posted
//! completion events can go stale; every membership change bumps a
//! generation counter and [`PsResource::tick`] ignores events carrying an
//! old generation. The driving engine's contract is:
//!
//! 1. after `submit` or a non-empty `tick`, call [`PsResource::poll`] and
//!    post a tick event at the returned time with the returned generation;
//! 2. on that event, call `tick(now, gen)` and handle returned completions.

use crate::SimTime;

/// Identifier of a job inside one [`PsResource`].
pub type PsJobId = u64;

#[derive(Debug, Clone, Copy)]
struct Job {
    id: PsJobId,
    remaining: f64,
}

/// Exact processor-sharing server. Work units are arbitrary (bytes for a
/// memory bus); `capacity` is work per nanosecond when a job runs alone.
#[derive(Debug, Clone)]
pub struct PsResource {
    capacity: f64,
    last: SimTime,
    jobs: Vec<Job>,
    next_id: PsJobId,
    generation: u64,
    busy: SimTime,
    total_completed: f64,
}

impl PsResource {
    /// New idle resource with the given full-rate capacity (work/ns).
    pub fn new(capacity: f64) -> Self {
        assert!(capacity > 0.0, "capacity must be positive");
        Self {
            capacity,
            last: 0,
            jobs: Vec::new(),
            next_id: 0,
            generation: 0,
            busy: 0,
            total_completed: 0.0,
        }
    }

    /// Work completed per job if a nanosecond elapses with `n` jobs active.
    fn eps(&self) -> f64 {
        // Tolerance: half a nanosecond of full-rate service.
        self.capacity * 0.5
    }

    fn advance(&mut self, now: SimTime) {
        // Jobs submitted slightly "in the past" (callers that fast-forward
        // arithmetically between events) are clamped to the resource's
        // clock: they start sharing from `last` onward.
        let now = now.max(self.last);
        let elapsed = (now - self.last) as f64;
        if elapsed > 0.0 && !self.jobs.is_empty() {
            let per_job = elapsed * self.capacity / self.jobs.len() as f64;
            for j in &mut self.jobs {
                j.remaining = (j.remaining - per_job).max(0.0);
            }
            self.busy += now - self.last;
        }
        self.last = now;
    }

    /// Add a job with `work` units at time `now`; returns its id.
    /// Invalidates previously polled completion times.
    pub fn submit(&mut self, now: SimTime, work: f64) -> PsJobId {
        assert!(work >= 0.0, "negative work");
        self.advance(now);
        let id = self.next_id;
        self.next_id += 1;
        self.jobs.push(Job {
            id,
            remaining: work,
        });
        self.generation += 1;
        id
    }

    /// Earliest completion `(time, generation)` under current membership,
    /// or `None` when idle. Valid until the next membership change.
    pub fn poll(&self) -> Option<(SimTime, u64)> {
        let min = self
            .jobs
            .iter()
            .map(|j| j.remaining)
            .fold(f64::INFINITY, f64::min);
        if min.is_finite() {
            let dt = (min * self.jobs.len() as f64 / self.capacity).ceil() as SimTime;
            Some((self.last + dt, self.generation))
        } else {
            None
        }
    }

    /// Process a completion event posted for `generation`. Returns the ids
    /// of jobs that finished (empty when the event is stale or premature).
    pub fn tick(&mut self, now: SimTime, generation: u64) -> Vec<PsJobId> {
        if generation != self.generation {
            return Vec::new();
        }
        self.advance(now);
        let eps = self.eps();
        let mut done = Vec::new();
        self.jobs.retain(|j| {
            if j.remaining <= eps {
                done.push(j.id);
                false
            } else {
                true
            }
        });
        if !done.is_empty() {
            self.generation += 1;
            self.total_completed += done.len() as f64;
        }
        done
    }

    /// Number of active jobs.
    pub fn active(&self) -> usize {
        self.jobs.len()
    }

    /// Time the resource has spent non-idle.
    pub fn busy_time(&self) -> SimTime {
        self.busy
    }

    /// Full-rate capacity (work/ns).
    pub fn capacity(&self) -> f64 {
        self.capacity
    }

    /// Current generation (bumped on every membership change).
    pub fn generation(&self) -> u64 {
        self.generation
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drive a PsResource to completion with a tiny local event loop.
    /// Returns (job id -> completion time).
    fn drain(ps: &mut PsResource) -> Vec<(PsJobId, SimTime)> {
        let mut out = Vec::new();
        while let Some((t, gen)) = ps.poll() {
            for id in ps.tick(t, gen) {
                out.push((id, t));
            }
        }
        out
    }

    #[test]
    fn single_job_runs_at_full_rate() {
        let mut ps = PsResource::new(2.0); // 2 work/ns
        let id = ps.submit(100, 1000.0);
        let done = drain(&mut ps);
        assert_eq!(done, vec![(id, 600)]);
        assert_eq!(ps.busy_time(), 500);
    }

    #[test]
    fn two_equal_jobs_share_equally() {
        let mut ps = PsResource::new(1.0);
        let a = ps.submit(0, 100.0);
        let b = ps.submit(0, 100.0);
        let done = drain(&mut ps);
        // Both finish together at 200 (each ran at rate 1/2).
        assert_eq!(done.len(), 2);
        assert!(done.iter().all(|&(_, t)| t == 200));
        assert!(done.iter().any(|&(id, _)| id == a));
        assert!(done.iter().any(|&(id, _)| id == b));
    }

    #[test]
    fn late_joiner_slows_the_first() {
        let mut ps = PsResource::new(1.0);
        let a = ps.submit(0, 100.0);
        // At t=50, a has 50 left; b joins with 200.
        let b = ps.submit(50, 200.0);
        let done = drain(&mut ps);
        // a: 50 remaining at rate 1/2 -> finishes at 150.
        // b: 200 - 50 (shared 50..150) = 150 left, alone -> 150+150=300.
        assert_eq!(done, vec![(a, 150), (b, 300)]);
    }

    #[test]
    fn stale_ticks_are_ignored() {
        let mut ps = PsResource::new(1.0);
        ps.submit(0, 100.0);
        let (t1, g1) = ps.poll().unwrap();
        ps.submit(10, 100.0); // membership change invalidates g1
        assert!(ps.tick(t1, g1).is_empty());
        assert_eq!(ps.active(), 2);
    }

    #[test]
    fn work_is_conserved() {
        // Total work / capacity == busy time when the resource never idles.
        let mut ps = PsResource::new(4.0);
        let works = [100.0, 250.0, 30.0, 1000.0, 77.0];
        for &w in &works {
            ps.submit(0, w);
        }
        drain(&mut ps);
        let total: f64 = works.iter().sum();
        let ideal = total / 4.0;
        let busy = ps.busy_time() as f64;
        assert!(
            (busy - ideal).abs() <= works.len() as f64,
            "busy={busy} ideal={ideal}"
        );
    }

    #[test]
    fn completion_order_matches_remaining_work() {
        let mut ps = PsResource::new(1.0);
        let big = ps.submit(0, 300.0);
        let small = ps.submit(0, 10.0);
        let done = drain(&mut ps);
        assert_eq!(done[0].0, small);
        assert_eq!(done[1].0, big);
        assert!(done[0].1 < done[1].1);
    }

    #[test]
    fn zero_work_job_completes_immediately() {
        let mut ps = PsResource::new(1.0);
        let id = ps.submit(5, 0.0);
        let (t, g) = ps.poll().unwrap();
        assert_eq!(t, 5);
        assert_eq!(ps.tick(t, g), vec![id]);
    }
}
