//! Deterministic discrete-event cluster simulation substrate.
//!
//! The paper's evaluation ran on 32 nodes of the PNNL Cascade cluster; this
//! repository has no cluster, so (per the substitution rule in DESIGN.md)
//! the multi-node experiments run on a discrete-event simulator instead.
//! This crate provides the reusable, application-agnostic pieces:
//!
//! * [`EventQueue`] — a deterministic time/sequence-ordered event heap and
//!   the [`run`] driver loop;
//! * [`FifoServer`] / [`MultiServer`] — serially-reusable resources with
//!   FIFO queueing discipline (NIC serialization, NXTVAL counter service);
//! * [`Nic`] — a latency + bandwidth network interface built on
//!   [`FifoServer`];
//! * [`PsResource`] — an exact processor-sharing resource used to model
//!   per-node memory bandwidth shared by concurrently executing
//!   memory-bound tasks;
//! * [`MutexResource`] — a FIFO mutex used to model the pthread mutex that
//!   protects the WRITE critical sections in the paper's variants.
//!
//! All state advances in integer nanoseconds ([`SimTime`]) and every
//! tie is broken by insertion sequence, so simulations are bit-for-bit
//! reproducible.

pub mod fifo;
pub mod mutex;
pub mod ps;
pub mod queue;

pub use fifo::{FifoServer, MultiServer, Nic};
pub use mutex::MutexResource;
pub use ps::PsResource;
pub use queue::{run, EventQueue, SimModel};

/// Simulated time in nanoseconds.
pub type SimTime = u64;

/// Convert seconds (f64) to [`SimTime`] nanoseconds, saturating at zero.
pub fn secs(s: f64) -> SimTime {
    (s * 1e9).max(0.0).round() as SimTime
}

/// Convert microseconds (f64) to [`SimTime`] nanoseconds.
pub fn micros(us: f64) -> SimTime {
    (us * 1e3).max(0.0).round() as SimTime
}

/// Convert a [`SimTime`] to seconds.
pub fn to_secs(t: SimTime) -> f64 {
    t as f64 / 1e9
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_conversions() {
        assert_eq!(secs(1.5), 1_500_000_000);
        assert_eq!(micros(2.5), 2_500);
        assert!((to_secs(secs(3.25)) - 3.25).abs() < 1e-12);
        assert_eq!(secs(-1.0), 0);
    }
}
