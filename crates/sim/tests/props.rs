//! Property-based tests for the simulation substrate invariants.

use dcsim::{EventQueue, FifoServer, MultiServer, MutexResource, Nic, PsResource};
use proptest::prelude::*;

/// Drain a PsResource through its poll/tick protocol; returns completions.
fn drain(ps: &mut PsResource) -> Vec<(u64, u64)> {
    let mut out = Vec::new();
    let mut guard = 0;
    while let Some((t, gen)) = ps.poll() {
        guard += 1;
        assert!(guard < 100_000, "PS drain did not converge");
        for id in ps.tick(t, gen) {
            out.push((id, t));
        }
    }
    out
}

proptest! {
    /// Every submitted PS job eventually completes, in order of remaining
    /// work for same-time submissions, and total busy time is within one
    /// ns/job of total_work/capacity.
    #[test]
    fn ps_conservation(
        works in prop::collection::vec(0.0f64..1e6, 1..40),
        capacity in 0.5f64..64.0,
    ) {
        let mut ps = PsResource::new(capacity);
        let ids: Vec<u64> = works.iter().map(|&w| ps.submit(0, w)).collect();
        let done = drain(&mut ps);
        prop_assert_eq!(done.len(), ids.len());
        // Completion times are non-decreasing in submitted work.
        let mut finished: Vec<(f64, u64)> = done
            .iter()
            .map(|&(id, t)| (works[ids.iter().position(|&i| i == id).unwrap()], t))
            .collect();
        finished.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        for pair in finished.windows(2) {
            prop_assert!(pair[0].1 <= pair[1].1 + 1);
        }
        let total: f64 = works.iter().sum();
        let ideal = total / capacity;
        prop_assert!((ps.busy_time() as f64 - ideal).abs() <= works.len() as f64 + 1.0,
            "busy={} ideal={}", ps.busy_time(), ideal);
    }

    /// Jobs submitted at staggered times still all complete, and no
    /// completion precedes its submission.
    #[test]
    fn ps_staggered_submissions(
        jobs in prop::collection::vec((0u64..10_000, 1.0f64..1e5), 1..30),
    ) {
        let mut jobs = jobs;
        jobs.sort_by_key(|j| j.0);
        let mut ps = PsResource::new(8.0);
        // Interleave submissions with the drain protocol.
        let mut completions = Vec::new();
        for &(at, work) in &jobs {
            // Process any completions strictly before `at`.
            while let Some((t, gen)) = ps.poll() {
                if t > at { break; }
                completions.extend(ps.tick(t, gen).into_iter().map(|id| (id, t)));
            }
            let id = ps.submit(at, work);
            let _ = id;
        }
        completions.extend(drain(&mut ps));
        prop_assert_eq!(completions.len(), jobs.len());
    }

    /// FIFO grants are non-overlapping, ordered, and conserve busy time.
    #[test]
    fn fifo_is_serial(durs in prop::collection::vec(0u64..1000, 1..50)) {
        let mut s = FifoServer::new();
        let mut prev_end = 0;
        let mut total = 0;
        for &d in &durs {
            let (b, e) = s.acquire(0, d);
            prop_assert!(b >= prev_end);
            prop_assert_eq!(e - b, d);
            prev_end = e;
            total += d;
        }
        prop_assert_eq!(s.busy_time(), total);
    }

    /// A k-server pool never exceeds k concurrent grants and finishes no
    /// earlier than total/k.
    #[test]
    fn multiserver_respects_k(
        durs in prop::collection::vec(1u64..1000, 1..60),
        k in 1usize..8,
    ) {
        let mut m = MultiServer::new(k);
        let mut spans = Vec::new();
        for &d in &durs {
            spans.push(m.acquire(0, d));
        }
        // Sweep concurrency.
        let mut edges: Vec<(u64, i32)> = Vec::new();
        for &(b, e) in &spans {
            edges.push((b, 1));
            edges.push((e, -1));
        }
        edges.sort();
        let mut level = 0;
        for &(_, delta) in &edges {
            level += delta;
            prop_assert!(level <= k as i32);
        }
        let total: u64 = durs.iter().sum();
        let makespan = spans.iter().map(|s| s.1).max().unwrap();
        prop_assert!(makespan >= total / k as u64);
    }

    /// NIC arrivals are monotone in enqueue order and at least
    /// latency + wire time after enqueue.
    #[test]
    fn nic_arrival_monotonicity(
        msgs in prop::collection::vec(1u64..1_000_000, 1..40),
        bw in 1.0f64..16.0,
        lat in 0u64..5_000,
    ) {
        let mut n = Nic::new(bw, lat);
        let mut prev = 0;
        for &bytes in &msgs {
            let arr = n.send(0, bytes);
            prop_assert!(arr >= prev);
            prop_assert!(arr >= n.wire_time(bytes) + lat);
            prev = arr;
        }
        prop_assert_eq!(n.bytes_sent(), msgs.iter().sum::<u64>());
    }

    /// Mutex: every locker eventually holds, exactly once, in FIFO order.
    #[test]
    fn mutex_fifo_fairness(n in 1u64..50) {
        let mut m = MutexResource::new();
        let mut grant_order = Vec::new();
        for who in 0..n {
            if m.lock(who) {
                grant_order.push(who);
            }
        }
        while let Some(holder) = m.holder() {
            if let Some(next) = m.unlock(holder) {
                grant_order.push(next);
            }
        }
        prop_assert_eq!(grant_order, (0..n).collect::<Vec<_>>());
        prop_assert_eq!(m.acquisitions(), n);
    }

    /// Event queue pops in (time, insertion) order regardless of input order.
    #[test]
    fn event_queue_total_order(times in prop::collection::vec(0u64..1_000, 1..100)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.post(t, i);
        }
        let mut last = (0u64, 0usize);
        let mut count = 0;
        let mut popped_first = false;
        while let Some((t, i)) = q.pop() {
            prop_assert_eq!(t, times[i]);
            if popped_first {
                // (time, seq) strictly increasing; seq == i since posts are in order.
                prop_assert!((t, i) > last);
            }
            last = (t, i);
            popped_first = true;
            count += 1;
        }
        prop_assert_eq!(count, times.len());
    }
}
