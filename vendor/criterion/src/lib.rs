//! Offline stand-in for the `criterion` crate.
//!
//! The build container has no crates.io access, so this workspace vendors
//! the call surface its benches use — `Criterion`, `benchmark_group`,
//! `bench_function` / `bench_with_input`, `Throughput`, `BenchmarkId`,
//! and the `criterion_group!` / `criterion_main!` macros — over a simple
//! adaptive wall-clock timer. There is no statistical machinery: each
//! bench is calibrated to a target measurement window and reports mean
//! time per iteration plus derived throughput to stdout.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target measurement window per benchmark.
const TARGET: Duration = Duration::from_millis(200);
/// Hard cap on iterations per benchmark.
const MAX_ITERS: u64 = 50_000_000;

/// True when the harness runs as a smoke test: invoked with `--test` or
/// `--quick` after the `--` separator (`cargo bench ... -- --test`, real
/// criterion's test mode), or with `CRITERION_QUICK=1` in the
/// environment. Each bench then executes a single timed iteration —
/// enough to prove the code runs, without the measurement windows.
pub fn quick_mode() -> bool {
    static QUICK: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *QUICK.get_or_init(|| {
        std::env::args().any(|a| a == "--test" || a == "--quick")
            || std::env::var_os("CRITERION_QUICK").is_some_and(|v| v != "0")
    })
}

/// Reported work per iteration, used to derive throughput.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier (name or parameter).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Identifier from a function name and a parameter.
    pub fn new(name: impl Into<String>, param: impl Display) -> Self {
        Self {
            label: format!("{}/{}", name.into(), param),
        }
    }

    /// Identifier from a parameter alone.
    pub fn from_parameter(param: impl Display) -> Self {
        Self {
            label: param.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self {
            label: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self { label: s }
    }
}

/// Timing context handed to bench closures.
pub struct Bencher {
    measured: Option<(u64, Duration)>,
}

impl Bencher {
    /// Time `f`, adaptively choosing an iteration count to fill the
    /// measurement window.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warmup + initial estimate.
        let t0 = Instant::now();
        black_box(f());
        let once = t0.elapsed().max(Duration::from_nanos(1));
        if quick_mode() {
            self.measured = Some((1, once));
            return;
        }
        let mut iters: u64 =
            (TARGET.as_nanos() / once.as_nanos()).clamp(1, MAX_ITERS as u128) as u64;
        loop {
            let t0 = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let dt = t0.elapsed();
            if dt >= TARGET / 2 || iters >= MAX_ITERS {
                self.measured = Some((iters, dt));
                return;
            }
            let scale = (TARGET.as_nanos() / dt.as_nanos().max(1)).clamp(2, 1000) as u64;
            iters = iters.saturating_mul(scale).min(MAX_ITERS);
        }
    }
}

fn report(
    group: Option<&str>,
    label: &str,
    throughput: Option<Throughput>,
    measured: Option<(u64, Duration)>,
) {
    let full = match group {
        Some(g) => format!("{g}/{label}"),
        None => label.to_string(),
    };
    let Some((iters, dt)) = measured else {
        println!("bench {full:<48} (no measurement)");
        return;
    };
    let ns = dt.as_nanos() as f64 / iters as f64;
    let mut line = format!("bench {full:<48} {:>14.1} ns/iter", ns);
    if let Some(tp) = throughput {
        let (amount, unit) = match tp {
            Throughput::Elements(n) => (n as f64, "elem/s"),
            Throughput::Bytes(n) => (n as f64, "B/s"),
        };
        let rate = amount / (ns * 1e-9);
        line.push_str(&format!("   {:>12.3e} {unit}", rate));
    }
    println!("{line}");
}

/// The benchmark harness entry point.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Run one standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher { measured: None };
        f(&mut b);
        report(None, name, None, b.measured);
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
        }
    }
}

/// A group of benchmarks sharing a name prefix and throughput setting.
pub struct BenchmarkGroup {
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup {
    /// Set the per-iteration work used for throughput reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Accepted for API compatibility; the adaptive timer ignores it.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the adaptive timer ignores it.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher { measured: None };
        f(&mut b);
        report(Some(&self.name), &id.label, self.throughput, b.measured);
        self
    }

    /// Run one parameterized benchmark in this group.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher { measured: None };
        f(&mut b, input);
        report(Some(&self.name), &id.label, self.throughput, b.measured);
        self
    }

    /// End the group.
    pub fn finish(self) {}
}

/// Define a function running the listed benchmarks with one `Criterion`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Define `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut b = Bencher { measured: None };
        b.iter(|| black_box(1 + 1));
        let (iters, dt) = b.measured.unwrap();
        assert!(iters >= 1);
        assert!(dt.as_nanos() > 0);
    }

    #[test]
    fn group_api_chains() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("t");
        g.throughput(Throughput::Elements(10)).sample_size(5);
        g.bench_function("noop", |b| b.iter(|| black_box(0)));
        g.bench_with_input(BenchmarkId::from_parameter(3), &3, |b, &x| {
            b.iter(|| black_box(x * 2))
        });
        g.finish();
    }
}
