//! Work-stealing deques: `Worker` / `Stealer` / `Injector`.
//!
//! API-compatible subset of `crossbeam_deque`. Each queue is a
//! `Mutex<VecDeque>`; owners block on their own (uncontended) lock, while
//! thieves use `try_lock` and surface contention as [`Steal::Retry`],
//! mirroring the lock-free original's CAS-failure path.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex, TryLockError};

/// Maximum number of tasks moved by one batch steal.
const MAX_BATCH: usize = 32;

/// Outcome of a steal attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Steal<T> {
    /// The queue was empty.
    Empty,
    /// One task was stolen.
    Success(T),
    /// The attempt lost a race; retrying may succeed.
    Retry,
}

impl<T> Steal<T> {
    /// The stolen value, if any.
    pub fn success(self) -> Option<T> {
        match self {
            Steal::Success(t) => Some(t),
            _ => None,
        }
    }

    /// True if the queue was observed empty.
    pub fn is_empty(&self) -> bool {
        matches!(self, Steal::Empty)
    }

    /// True if the attempt should be retried.
    pub fn is_retry(&self) -> bool {
        matches!(self, Steal::Retry)
    }
}

#[derive(Debug)]
struct Buf<T> {
    q: Mutex<VecDeque<T>>,
}

impl<T> Buf<T> {
    fn new() -> Self {
        Self {
            q: Mutex::new(VecDeque::new()),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, VecDeque<T>> {
        self.q.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// Which end the owner pops from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Flavor {
    Fifo,
    Lifo,
}

/// The owner's handle of a work-stealing deque: push and pop are cheap and
/// (here) only contend with an active thief.
#[derive(Debug)]
pub struct Worker<T> {
    buf: Arc<Buf<T>>,
    flavor: Flavor,
}

impl<T> Worker<T> {
    /// A deque whose owner pops oldest-first.
    pub fn new_fifo() -> Self {
        Self {
            buf: Arc::new(Buf::new()),
            flavor: Flavor::Fifo,
        }
    }

    /// A deque whose owner pops newest-first (locality-biased).
    pub fn new_lifo() -> Self {
        Self {
            buf: Arc::new(Buf::new()),
            flavor: Flavor::Lifo,
        }
    }

    /// Push a task onto the owner's end.
    pub fn push(&self, task: T) {
        self.buf.lock().push_back(task);
    }

    /// Pop a task from the owner's end.
    pub fn pop(&self) -> Option<T> {
        let mut q = self.buf.lock();
        match self.flavor {
            Flavor::Fifo => q.pop_front(),
            Flavor::Lifo => q.pop_back(),
        }
    }

    /// A thief handle for this deque.
    pub fn stealer(&self) -> Stealer<T> {
        Stealer {
            buf: self.buf.clone(),
        }
    }

    /// Number of queued tasks (racy, advisory).
    pub fn len(&self) -> usize {
        self.buf.lock().len()
    }

    /// True if no tasks are queued (racy, advisory).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A thief's handle: steals oldest-first from another worker's deque.
#[derive(Debug)]
pub struct Stealer<T> {
    buf: Arc<Buf<T>>,
}

impl<T> Clone for Stealer<T> {
    fn clone(&self) -> Self {
        Self {
            buf: self.buf.clone(),
        }
    }
}

impl<T> Stealer<T> {
    /// Steal one task from the far (oldest) end.
    pub fn steal(&self) -> Steal<T> {
        match self.buf.q.try_lock() {
            Ok(mut q) => match q.pop_front() {
                Some(t) => Steal::Success(t),
                None => Steal::Empty,
            },
            Err(TryLockError::WouldBlock) => Steal::Retry,
            Err(TryLockError::Poisoned(e)) => match e.into_inner().pop_front() {
                Some(t) => Steal::Success(t),
                None => Steal::Empty,
            },
        }
    }

    /// Steal up to half the victim's tasks (capped) into `dest`, returning
    /// the first stolen task.
    pub fn steal_batch_and_pop(&self, dest: &Worker<T>) -> Steal<T> {
        let mut src = match self.buf.q.try_lock() {
            Ok(q) => q,
            Err(TryLockError::WouldBlock) => return Steal::Retry,
            Err(TryLockError::Poisoned(e)) => e.into_inner(),
        };
        let n = src.len();
        if n == 0 {
            return Steal::Empty;
        }
        let take = (n.div_ceil(2)).min(MAX_BATCH);
        let first = src.pop_front().expect("non-empty");
        if take > 1 {
            let mut dst = dest.buf.lock();
            for _ in 1..take {
                match src.pop_front() {
                    Some(t) => dst.push_back(t),
                    None => break,
                }
            }
        }
        Steal::Success(first)
    }

    /// Number of queued tasks (racy, advisory).
    pub fn len(&self) -> usize {
        self.buf.lock().len()
    }

    /// True if no tasks are queued (racy, advisory).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A shared FIFO injection queue (roots, overflow): any thread may push,
/// any worker may steal.
#[derive(Debug, Default)]
pub struct Injector<T> {
    buf: Buf<T>,
}

impl<T> Default for Buf<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Injector<T> {
    /// An empty injector.
    pub fn new() -> Self {
        Self { buf: Buf::new() }
    }

    /// Push a task onto the back of the queue.
    pub fn push(&self, task: T) {
        self.buf.lock().push_back(task);
    }

    /// Steal one task from the front.
    pub fn steal(&self) -> Steal<T> {
        match self.buf.q.try_lock() {
            Ok(mut q) => match q.pop_front() {
                Some(t) => Steal::Success(t),
                None => Steal::Empty,
            },
            Err(TryLockError::WouldBlock) => Steal::Retry,
            Err(TryLockError::Poisoned(e)) => match e.into_inner().pop_front() {
                Some(t) => Steal::Success(t),
                None => Steal::Empty,
            },
        }
    }

    /// Steal a batch into `dest`'s deque, returning the first task.
    pub fn steal_batch_and_pop(&self, dest: &Worker<T>) -> Steal<T> {
        let mut src = match self.buf.q.try_lock() {
            Ok(q) => q,
            Err(TryLockError::WouldBlock) => return Steal::Retry,
            Err(TryLockError::Poisoned(e)) => e.into_inner(),
        };
        let n = src.len();
        if n == 0 {
            return Steal::Empty;
        }
        let take = (n.div_ceil(2)).min(MAX_BATCH);
        let first = src.pop_front().expect("non-empty");
        if take > 1 {
            let mut dst = dest.buf.lock();
            for _ in 1..take {
                match src.pop_front() {
                    Some(t) => dst.push_back(t),
                    None => break,
                }
            }
        }
        Steal::Success(first)
    }

    /// Number of queued tasks (racy, advisory).
    pub fn len(&self) -> usize {
        self.buf.lock().len()
    }

    /// True if no tasks are queued (racy, advisory).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifo_owner_fifo_thief() {
        let w = Worker::new_lifo();
        let s = w.stealer();
        w.push(1);
        w.push(2);
        w.push(3);
        assert_eq!(w.pop(), Some(3)); // owner: newest first
        assert_eq!(s.steal().success(), Some(1)); // thief: oldest first
        assert_eq!(w.pop(), Some(2));
        assert!(s.steal().is_empty());
    }

    #[test]
    fn fifo_owner_preserves_order() {
        let w = Worker::new_fifo();
        w.push(1);
        w.push(2);
        assert_eq!(w.pop(), Some(1));
        assert_eq!(w.pop(), Some(2));
        assert_eq!(w.pop(), None);
    }

    #[test]
    fn batch_steal_moves_half() {
        let inj = Injector::new();
        for i in 0..10 {
            inj.push(i);
        }
        let w = Worker::new_fifo();
        assert_eq!(inj.steal_batch_and_pop(&w).success(), Some(0));
        // Half of 10 = 5 taken: one returned, four in dest.
        assert_eq!(w.len(), 4);
        assert_eq!(inj.len(), 5);
        assert_eq!(w.pop(), Some(1));
    }

    #[test]
    fn injector_fifo() {
        let inj = Injector::new();
        inj.push("a");
        inj.push("b");
        assert_eq!(inj.steal().success(), Some("a"));
        assert_eq!(inj.steal().success(), Some("b"));
        assert!(inj.steal().is_empty());
    }
}
