//! Offline stand-in for the `crossbeam` crate.
//!
//! The build container has no crates.io access, so this workspace vendors
//! the slice of `crossbeam` it uses: the work-stealing deque API
//! (`deque::{Worker, Stealer, Injector, Steal}`). The implementation is a
//! per-queue small mutex rather than the upstream lock-free Chase-Lev
//! deque; the call signatures (including `Steal::Retry` on contention,
//! reported here when a `try_lock` fails) are kept identical so swapping
//! the real crate back in is a one-line `Cargo.toml` change. Sharding —
//! one queue per worker — is what removes the dispatch bottleneck; the
//! per-shard lock is uncontended in the common case.

pub mod deque;
