//! Offline stand-in for the `parking_lot` crate.
//!
//! The build container has no crates.io access, so this workspace vendors
//! the *subset* of `parking_lot`'s API that it actually uses — `Mutex`,
//! `RwLock`, and `Condvar` with the non-poisoning, guard-taking call
//! signatures — implemented over `std::sync`. Poisoned locks are
//! transparently recovered (a panicking task body must not wedge every
//! other worker), which matches `parking_lot`'s no-poisoning semantics.

use std::fmt;
use std::ops::{Deref, DerefMut};

/// A mutual exclusion primitive (non-poisoning `lock()` signature).
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    // `Option` so Condvar::wait can move the std guard out and back.
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the underlying data.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the mutex, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let g = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        MutexGuard { inner: Some(g) }
    }

    /// Attempt to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(MutexGuard {
                inner: Some(e.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard invariant")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard invariant")
    }
}

/// A condition variable with `parking_lot`'s `wait(&mut guard)` signature.
#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Create a new condition variable.
    pub const fn new() -> Self {
        Self {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Atomically release the guard's mutex and block until notified; the
    /// mutex is re-acquired (into the same guard) before returning.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.inner.take().expect("guard invariant");
        let g = self.inner.wait(g).unwrap_or_else(|e| e.into_inner());
        guard.inner = Some(g);
    }

    /// As [`Condvar::wait`], but give up after `timeout`; the result says
    /// whether the wait timed out (spurious wakeups still possible).
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: std::time::Duration,
    ) -> WaitTimeoutResult {
        let g = guard.inner.take().expect("guard invariant");
        let (g, res) = match self.inner.wait_timeout(g, timeout) {
            Ok((g, res)) => (g, res),
            Err(e) => {
                let (g, res) = e.into_inner();
                (g, res)
            }
        };
        guard.inner = Some(g);
        WaitTimeoutResult(res.timed_out())
    }

    /// Wake one waiting thread.
    pub fn notify_one(&self) -> bool {
        self.inner.notify_one();
        true
    }

    /// Wake all waiting threads.
    pub fn notify_all(&self) -> usize {
        self.inner.notify_all();
        0
    }
}

/// Whether a [`Condvar::wait_for`] returned because its timeout expired.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// True if the wait ended by timeout rather than notification.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// A reader-writer lock (non-poisoning signatures).
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Create a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consume the lock, returning the underlying data.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> std::sync::RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> std::sync::RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn try_lock_contended() {
        let m = Mutex::new(0);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn wait_for_reports_timeout() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let (m, cv) = &*pair;
        let mut g = m.lock();
        let res = cv.wait_for(&mut g, std::time::Duration::from_millis(10));
        assert!(res.timed_out());
        drop(g);
        let p2 = pair.clone();
        let h = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut g = m.lock();
            while !*g {
                let res = cv.wait_for(&mut g, std::time::Duration::from_secs(30));
                assert!(!res.timed_out(), "should be notified, not time out");
            }
        });
        std::thread::sleep(std::time::Duration::from_millis(20));
        *m.lock() = true;
        cv.notify_all();
        h.join().unwrap();
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = pair.clone();
        let h = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut g = m.lock();
            while !*g {
                cv.wait(&mut g);
            }
        });
        {
            let (m, cv) = &*pair;
            *m.lock() = true;
            cv.notify_all();
        }
        h.join().unwrap();
    }
}
