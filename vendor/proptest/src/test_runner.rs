//! Test-runner plumbing: configuration, error type, deterministic RNG.

use std::fmt;

/// Per-test configuration (subset: case count).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// A failed test case (no shrinking: carries the message only).
#[derive(Debug, Clone)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Fail the current case with `reason`.
    pub fn fail(reason: impl Into<String>) -> Self {
        Self(reason.into())
    }

    /// Reject the current case (treated as failure here — filters should
    /// be rare enough not to matter for these suites).
    pub fn reject(reason: impl Into<String>) -> Self {
        Self(reason.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for TestCaseError {}

/// Deterministic RNG (splitmix64) used to drive strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// RNG seeded from an arbitrary string (test name), so every run of a
    /// given test sees the same case sequence.
    pub fn deterministic(name: &str) -> Self {
        let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV-1a
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        Self { state: h | 1 }
    }

    /// RNG from an explicit seed.
    pub fn from_seed(seed: u64) -> Self {
        Self { state: seed | 1 }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        // splitmix64
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Next 32 random bits.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// An independent child RNG (for `prop_perturb`).
    pub fn fork(&mut self) -> TestRng {
        TestRng {
            state: self.next_u64() | 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = TestRng::deterministic("x::y");
        let mut b = TestRng::deterministic("x::y");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::deterministic("x::z");
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn fork_diverges() {
        let mut a = TestRng::from_seed(7);
        let mut f = a.fork();
        assert_ne!(a.next_u64(), f.next_u64());
    }
}
