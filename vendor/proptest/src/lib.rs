//! Offline stand-in for the `proptest` crate.
//!
//! The build container has no crates.io access, so this workspace vendors
//! the subset of proptest's API that its test suites use: the [`Strategy`]
//! trait with `prop_map` / `prop_perturb` / `prop_recursive`, boxed and
//! union strategies, range and tuple strategies, `collection::vec`,
//! `any::<T>()`, and the `proptest!` / `prop_oneof!` / `prop_assert!` /
//! `prop_assert_eq!` macros.
//!
//! Differences from upstream, by design:
//!
//! * **No shrinking.** A failing case reports its inputs' values via the
//!   assertion message and the deterministic case index instead.
//! * **Deterministic seeding.** The RNG is seeded from the test's module
//!   path and name, so failures reproduce exactly across runs.
//! * Default case count is 64 (override with
//!   `#![proptest_config(ProptestConfig::with_cases(n))]`).

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// Everything a test file needs, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// The `prop::` module alias (`prop::collection::vec(...)`).
    pub mod prop {
        pub use crate::collection;
    }
}

/// Run each `fn name(arg in strategy, ...) { body }` as a `#[test]` over
/// `cases` deterministic random samples.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { @cfg($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_impl {
    (@cfg($cfg:expr) $( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::test_runner::ProptestConfig = $cfg;
                let mut __rng = $crate::test_runner::TestRng::deterministic(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                for __case in 0..__cfg.cases {
                    $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut __rng);)+
                    let __result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $body
                            #[allow(unreachable_code)]
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(e) = __result {
                        ::std::panic!(
                            "proptest {} failed at case {}: {}",
                            stringify!($name),
                            __case,
                            e
                        );
                    }
                }
            }
        )*
    };
}

/// Uniform choice between strategies sharing one `Value` type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Assert inside a proptest body; failure aborts the case with a message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {{
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    }};
}

/// Assert equality inside a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)+);
    }};
}

/// Assert inequality inside a proptest body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: {:?} == {:?}", l, r);
    }};
}
