//! The [`Strategy`] trait and its combinators.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};
use std::sync::Arc;

/// A generator of random values of one type.
///
/// Unlike upstream proptest there is no value tree / shrinking: a strategy
/// is just a deterministic function of the RNG stream.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Transform generated values with `f`, which also receives a fork of
    /// the RNG.
    fn prop_perturb<O, F>(self, f: F) -> Perturb<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value, TestRng) -> O,
    {
        Perturb { inner: self, f }
    }

    /// Build recursive structures: `grow` receives a strategy for smaller
    /// instances and returns the strategy for one level up. `depth` bounds
    /// the recursion; `_size` and `_items` are accepted for upstream
    /// signature compatibility and unused.
    fn prop_recursive<S2, F>(
        self,
        depth: u32,
        _size: u32,
        _items: u32,
        grow: F,
    ) -> Recursive<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        S2: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S2 + 'static,
    {
        Recursive {
            leaf: self.boxed(),
            grow: Arc::new(move |inner| grow(inner).boxed()),
            depth,
        }
    }

    /// Type-erase this strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Arc::new(self))
    }
}

trait DynStrategy<T> {
    fn sample_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn sample_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.sample(rng)
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(Arc<dyn DynStrategy<T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        Self(self.0.clone())
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        self.0.sample_dyn(rng)
    }
}

/// Always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_perturb`].
#[derive(Clone)]
pub struct Perturb<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Perturb<S, F>
where
    S: Strategy,
    F: Fn(S::Value, TestRng) -> O,
{
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        let v = self.inner.sample(rng);
        let fork = rng.fork();
        (self.f)(v, fork)
    }
}

/// See [`Strategy::prop_recursive`].
pub struct Recursive<T> {
    leaf: BoxedStrategy<T>,
    grow: Arc<dyn Fn(BoxedStrategy<T>) -> BoxedStrategy<T>>,
    depth: u32,
}

impl<T> Clone for Recursive<T> {
    fn clone(&self) -> Self {
        Self {
            leaf: self.leaf.clone(),
            grow: self.grow.clone(),
            depth: self.depth,
        }
    }
}

impl<T: 'static> Strategy for Recursive<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        if self.depth == 0 || rng.next_u32().is_multiple_of(4) {
            return self.leaf.sample(rng);
        }
        let inner = Recursive {
            leaf: self.leaf.clone(),
            grow: self.grow.clone(),
            depth: self.depth - 1,
        }
        .boxed();
        (self.grow)(inner).sample(rng)
    }
}

/// Uniform choice between boxed strategies (built by `prop_oneof!`).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Self {
            arms: self.arms.clone(),
        }
    }
}

impl<T> Union<T> {
    /// Union over `arms` (must be non-empty).
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Self { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let i = (rng.next_u64() % self.arms.len() as u64) as usize;
        self.arms[i].sample(rng)
    }
}

// ---------------------------------------------------------------- ranges --

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128) - (self.start as i128);
                (self.start as i128 + (rng.next_u64() as i128).rem_euclid(span)) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128) - (lo as i128) + 1;
                (lo as i128 + (rng.next_u64() as i128).rem_euclid(span)) as $t
            }
        }
    )*};
}

int_range_strategy!(i8, i16, i32, i64, u8, u16, u32, usize);

// u64 spans can exceed i128's comfortable rem_euclid path only in theory
// (u64 fits i128), but keep it in the same macro family:
int_range_strategy!(u64);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        let frac = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + (self.end - self.start) * frac
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        let frac = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        lo + (hi - lo) * frac
    }
}

// ---------------------------------------------------------------- tuples --

macro_rules! tuple_strategy {
    ($($s:ident . $idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    };
}

tuple_strategy!(A.0, B.1);
tuple_strategy!(A.0, B.1, C.2);
tuple_strategy!(A.0, B.1, C.2, D.3);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::from_seed(42)
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = rng();
        for _ in 0..1000 {
            let v = (3i64..17).sample(&mut r);
            assert!((3..17).contains(&v));
            let u = (1u8..=2).sample(&mut r);
            assert!((1..=2).contains(&u));
            let f = (-2.0f64..2.0).sample(&mut r);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn map_and_union() {
        let s = crate::prop_oneof![Just(1i64), (10i64..20).prop_map(|x| x * 2)];
        let mut r = rng();
        for _ in 0..100 {
            let v = s.sample(&mut r);
            assert!(v == 1 || (20..40).contains(&v), "{v}");
        }
    }

    #[test]
    fn recursive_terminates() {
        #[derive(Debug)]
        enum Tree {
            Leaf(i64),
            Node(Box<Tree>, Box<Tree>),
        }
        // Returns depth while also validating every leaf payload.
        fn depth(t: &Tree) -> u32 {
            match t {
                Tree::Leaf(v) => {
                    assert!((0..10).contains(v));
                    0
                }
                Tree::Node(a, b) => 1 + depth(a).max(depth(b)),
            }
        }
        let s = (0i64..10)
            .prop_map(Tree::Leaf)
            .prop_recursive(4, 64, 2, |inner| {
                (inner.clone(), inner).prop_map(|(a, b)| Tree::Node(Box::new(a), Box::new(b)))
            });
        let mut r = rng();
        for _ in 0..200 {
            assert!(depth(&s.sample(&mut r)) <= 4);
        }
    }

    #[test]
    fn perturb_forks_rng() {
        let s = Just(0u32).prop_perturb(|_, mut rng| rng.next_u32());
        let mut r = rng();
        let a = s.sample(&mut r);
        let b = s.sample(&mut r);
        assert_ne!(a, b);
    }
}
