//! Collection strategies (`vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::Range;

/// The strategy returned by [`vec`].
#[derive(Clone)]
pub struct VecStrategy<S> {
    element: S,
    len: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = self.len.clone().sample(rng);
        (0..n).map(|_| self.element.sample(rng)).collect()
    }
}

/// Vectors of `element` with a length drawn from `len`.
pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
    assert!(len.start < len.end, "empty length range");
    VecStrategy { element, len }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lengths_and_elements_in_range() {
        let s = vec(0i64..5, 2..7);
        let mut rng = TestRng::from_seed(9);
        for _ in 0..200 {
            let v = s.sample(&mut rng);
            assert!((2..7).contains(&v.len()));
            assert!(v.iter().all(|x| (0..5).contains(x)));
        }
    }
}
