//! `any::<T>()` for primitive types.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::marker::PhantomData;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    /// Draw an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arb_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite doubles only: proptest's any::<f64> is richer, but the
        // suites here only need "some spread of ordinary values".
        let frac = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        (frac - 0.5) * 2e6
    }
}

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any(PhantomData)
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Full-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bool_hits_both_values() {
        let mut rng = TestRng::from_seed(1);
        let mut seen = [false, false];
        for _ in 0..64 {
            seen[bool::arbitrary(&mut rng) as usize] = true;
        }
        assert_eq!(seen, [true, true]);
    }
}
