#!/usr/bin/env bash
# Full local CI gate: build, tests, lints, formatting.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo clippy -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> bench smoke (kernels, quick mode)"
cargo bench -q -p bench-harness --bench kernels -- --test

echo "==> comm smoke (4 ranks over sockets, v1..v5 vs single-process energies)"
cargo run -q --release -p bench-harness --bin comm_bench -- --smoke

echo "CI OK"
