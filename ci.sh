#!/usr/bin/env bash
# Full local CI gate: build, tests, lints, formatting.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q (workspace: includes the loopback chaos matrices)"
cargo test --workspace -q

echo "==> cargo clippy -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> bench smoke (kernels, quick mode)"
cargo bench -q -p bench-harness --bench kernels -- --test

echo "==> bench smoke (chain_epilogue, quick mode)"
cargo bench -q -p bench-harness --bench chain_epilogue -- --test

echo "==> BENCH_epilogue.json well-formed"
# Quick mode writes under target/; the committed copy lives at the root.
for f in target/BENCH_epilogue.json BENCH_epilogue.json; do
    if [ -f "$f" ]; then
        if command -v jq >/dev/null 2>&1; then
            jq -e '.epilogue.speedup and .data_path_bytes.ratio' "$f" >/dev/null
        else
            python3 -c "import json,sys; d=json.load(open(sys.argv[1])); d['epilogue']['speedup']; d['data_path_bytes']['ratio']" "$f"
        fi
        echo "    $f OK"
    fi
done

echo "==> comm smoke (4 ranks x 4 workers over sockets, v1..v5 + fused v5 vs single-process energies, verified tile cache)"
# The smoke runs every rank with 4 stealing workers beside the comm
# progress thread (the fused-engine hot configuration) and the tile
# cache in paranoia mode: each cache hit is re-fetched fresh from the
# owners and compared, and a single stale read fails the gate. A healthy
# mesh must also show zero recovery activity — any retry/timeout/dup on
# the clean sockets fails CI. Single rep per variant keeps wall time
# bounded. Also enforces the wire-accounting reconciliation (GA remote
# get bytes == endpoint requested get bytes).
cargo run -q --release -p bench-harness --bin comm_bench -- --smoke --threads 4 --reps 1

echo "==> comm chaos matrix (4 ranks x 4 workers over sockets, fault schedules + kill/restart matrix, fixed seeds)"
# The 4-rank loopback matrix (7 schedules x 2 variants, plus comm-level
# chaos) already ran under `cargo test`; this adds the real-socket pass.
# The same invocation also runs the kill/restart death matrix: four
# scripted death schedules (mid-gemm, mid-barrier, mid-submit, and
# kill-then-restart) where the survivors' failure detector must confirm
# the victim's death — plus a clean control that must show zero detector
# false positives and zero recovery activity. Fixed seed so a red run
# replays exactly; fails on energy divergence, any recovery activity in
# the clean control, or any verified-stale cached read under faults
# (the cache runs with verify_reads here too).
cargo run -q --release -p bench-harness --bin comm_bench -- --chaos --seed c0ffee00

echo "==> service smoke (4-rank socket daemons, 2-gang configuration, 2 tenants, 4 jobs)"
# Persistent per-rank daemons serve a multi-tenant job stream over real
# sockets in the gang-scheduled configuration: two 2-rank-gang jobs run
# concurrently on disjoint rank subsets, then two full-mesh jobs. The
# binary gates on every job's energy matching the single-process
# reference to 1e-12, well-formed gang fields (non-empty in-mesh masks
# of the requested size, dense per-gang ordinals), per-rank job counts
# and plan-cache hits exactly as the gang-scoped plan keys predict, and
# — on the clean mesh — zero retries and zero verified-stale cached
# reads. The printed gang masks double-check the 2-gang shape below.
smoke_out=$(cargo run -q --release -p bench-harness --bin service_bench -- --smoke)
echo "$smoke_out"
echo "$smoke_out" | grep -q "SERVICE SMOKE OK" || { echo "service smoke failed"; exit 1; }
echo "$smoke_out" | grep -q "gangs 0b[01]*/0b[01]*" || { echo "gang fields malformed in smoke output"; exit 1; }
echo "$smoke_out" | grep -q "0 retries, 0 stale reads" || { echo "smoke not clean"; exit 1; }

echo "==> service recovery gate (4-rank socket daemons, rank 3 killed mid-stream, checkpoint + replay gates)"
# The kill-mid-run survival story over real OS processes: rank 3's
# transport goes dark at a scripted frame index while six full-mesh
# jobs stream through the service. Every survivor's detector must
# confirm the death, the gateway must fence the victim and requeue the
# jobs caught on the broken mesh, the replays must match their per-job
# reference energies to 1e-12 with zero stale reads, and job-boundary
# checkpoints must land on disk. The printed --kill-at/--seed pair
# replays a red run exactly; the run amends the `recovery` block of
# BENCH_service.json checked below.
rec_out=$(cargo run -q --release -p bench-harness --bin service_bench -- --recovery)
echo "$rec_out"
echo "$rec_out" | grep -q "RECOVERY OK" || { echo "service recovery gate failed"; exit 1; }

echo "==> BENCH_service.json well-formed"
if [ -f BENCH_service.json ]; then
    if command -v jq >/dev/null 2>&1; then
        jq -e '.baseline.throughput_jobs_per_sec and .gangs.throughput_jobs_per_sec
               and .gangs.plan_cache.hit_rate and (.gangs.plan_cache | has("evictions"))
               and .gang_win.jobs_per_sec_gain and .gang_win.small_job_p50_speedup
               and (.baseline.tenants | length > 0) and (.gangs.tenants | length > 0)
               and .recovery.requeued_jobs >= 1 and .recovery.confirmed_deaths >= 1
               and .recovery.checkpoint_bytes > 0 and .recovery.stale_reads == 0
               and (.recovery | has("time_to_detect_ms") and has("time_to_recover_ms")
                    and has("replayed_chains"))' \
            BENCH_service.json >/dev/null
    else
        python3 -c "import json,sys; d=json.load(open(sys.argv[1])); d['baseline']['throughput_jobs_per_sec']; d['gangs']['plan_cache']['evictions']; d['gang_win']['jobs_per_sec_gain']; d['gang_win']['small_job_p50_speedup']; assert d['baseline']['tenants'] and d['gangs']['tenants']; r=d['recovery']; assert r['requeued_jobs'] >= 1 and r['confirmed_deaths'] >= 1 and r['checkpoint_bytes'] > 0 and r['stale_reads'] == 0; r['time_to_detect_ms']; r['time_to_recover_ms']; r['replayed_chains']" BENCH_service.json
    fi
    echo "    BENCH_service.json OK"
fi

echo "CI OK"
