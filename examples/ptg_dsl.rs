//! Figures 1 and 2, executable: the PTG of chained GEMMs and the one-line
//! change that turns the chain into parallel GEMMs feeding a reduction.
//!
//! The paper's point ("the learning curve ... comes with rewards"): the
//! *entire* difference between the serial-chain organization and the
//! parallel-with-reduction organization is the dataflow declaration of
//! matrix C. Here both programs are parsed, audited, and executed; the
//! graph statistics show the chain's depth collapsing.
//!
//! ```text
//! cargo run --release --example ptg_dsl
//! ```

use ptg::dsl::DslBuilder;
use ptg::validate::audit;
use ptg::PlainCtx;
use std::sync::Arc;

/// Figure 1: GEMMs organized in a chain. (`input_a`/`input_b` are host
/// data providers; `rr` is the round-robin placement function the paper
/// looks up through `descRR`.)
const FIG1: &str = r#"
    READ_A(L1, L2)
    L1 = 0 .. size_L1 - 1
    L2 = 0 .. size_L2 - 1
    : rr(L1)
    WRITE A <- input_a(L1, L2) -> A GEMM(L1, L2)
    ; size_L1 - L1 + 5 * P
    BODY reader

    READ_B(L1, L2)
    L1 = 0 .. size_L1 - 1
    L2 = 0 .. size_L2 - 1
    : rr(L1)
    WRITE B <- input_b(L1, L2) -> B GEMM(L1, L2)
    ; size_L1 - L1 + 5 * P
    BODY reader

    DFILL(L1)
    L1 = 0 .. size_L1 - 1
    : rr(L1)
    WRITE C -> C GEMM(L1, 0)
    ; size_L1 - L1
    BODY dfill

    GEMM(L1, L2)
    L1 = 0 .. size_L1 - 1
    L2 = 0 .. size_L2 - 1
    : rr(L1)
    READ A <- A READ_A(L1, L2)
    READ B <- B READ_B(L1, L2)
    RW C <- (L2 == 0) ? C DFILL(L1)
         <- (L2 != 0) ? C GEMM(L1, L2 - 1)
         -> (L2 < size_L2 - 1) ? C GEMM(L1, L2 + 1)
         -> (L2 == size_L2 - 1) ? C SORT(L1)
    ; size_L1 - L1 + 1 * P
    BODY gemm

    SORT(L1)
    L1 = 0 .. size_L1 - 1
    : rr(L1)
    READ C <- C GEMM(L1, size_L2 - 1)
    BODY sort
"#;

/// Figure 2: the GEMM's C flow becomes `WRITE C -> A REDUCTION(L1, L2)`.
/// (The REDUCTION class and the removal of DFILL come along with it.)
const FIG2: &str = r#"
    READ_A(L1, L2)
    L1 = 0 .. size_L1 - 1
    L2 = 0 .. size_L2 - 1
    : rr(L1)
    WRITE A <- input_a(L1, L2) -> A GEMM(L1, L2)
    ; size_L1 - L1 + 5 * P
    BODY reader

    READ_B(L1, L2)
    L1 = 0 .. size_L1 - 1
    L2 = 0 .. size_L2 - 1
    : rr(L1)
    WRITE B <- input_b(L1, L2) -> B GEMM(L1, L2)
    ; size_L1 - L1 + 5 * P
    BODY reader

    GEMM(L1, L2)
    L1 = 0 .. size_L1 - 1
    L2 = 0 .. size_L2 - 1
    : rr(L1)
    READ A <- A READ_A(L1, L2)
    READ B <- B READ_B(L1, L2)
    WRITE C -> A REDUCTION(L1, L2)
    ; size_L1 - L1 + 1 * P
    BODY gemm

    REDUCTION(L1, L2)
    L1 = 0 .. size_L1 - 1
    L2 = 0 .. size_L2 - 1
    : rr(L1)
    READ A <- A GEMM(L1, L2)
    RW C <- (L2 != 0) ? C REDUCTION(L1, L2 - 1)
         -> (L2 < size_L2 - 1) ? C REDUCTION(L1, L2 + 1)
         -> (L2 == size_L2 - 1) ? C SORT(L1)
    ; size_L1 - L1
    BODY reduce

    SORT(L1)
    L1 = 0 .. size_L1 - 1
    : rr(L1)
    READ C <- C REDUCTION(L1, size_L2 - 1)
    BODY sort
"#;

fn build(src: &str, chains: i64, links: i64) -> ptg::TaskGraph {
    DslBuilder::new(src)
        .global("size_L1", chains)
        .global("size_L2", links)
        .func("rr", Arc::new(|a: &[i64]| a[0]))
        .compile(Arc::new(PlainCtx { nodes: 4 }))
        .expect("DSL compiles")
}

fn main() {
    let (chains, links) = (6i64, 8i64);

    let fig1 = build(FIG1, chains, links);
    let a1 = audit(&fig1, 100_000).expect("fig1 audits");
    println!("Figure 1 (chained GEMMs):");
    println!("  tasks {:?}", a1.tasks_per_class);
    println!(
        "  depth {} / GEMM stage spans levels {:?}",
        a1.depth, a1.class_levels["GEMM"]
    );

    let fig2 = build(FIG2, chains, links);
    let a2 = audit(&fig2, 100_000).expect("fig2 audits");
    println!("\nFigure 2 (parallel GEMMs + reduction):");
    println!("  tasks {:?}", a2.tasks_per_class);
    println!(
        "  depth {} / GEMM stage spans levels {:?}",
        a2.depth, a2.class_levels["GEMM"]
    );

    let (g1_min, g1_max) = a1.class_levels["GEMM"];
    let (g2_min, g2_max) = a2.class_levels["GEMM"];
    println!(
        "\nthe GEMM stage went from a {}-level serial chain to a single level — \
         \"the one line that must replace the four lines\"",
        g1_max - g1_min + 1
    );
    assert_eq!(g1_max - g1_min + 1, links as usize);
    assert_eq!(g2_min, g2_max, "all Figure-2 GEMMs are independent");
    assert_eq!(a1.tasks_per_class["GEMM"], a2.tasks_per_class["GEMM"]);
}
