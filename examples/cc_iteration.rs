//! An iterative coupled-cluster-style solver built on the ported term.
//!
//! CCSD is an iterative method: the amplitude equations are solved by
//! fixed-point iteration, re-evaluating contraction terms like
//! `icsd_t2_7` each sweep. This example closes that loop with a toy
//! Jacobi-style update,
//!
//! ```text
//! t2  <-  t2_initial + lambda * P(i2[t2]),
//! ```
//!
//! where `i2[t2]` is the t2_7 contraction executed as a PaRSEC task graph
//! over real Global Arrays and `P` permutes the residual's
//! `[h1,h2,p3,p4]` blocks back into t2's `[p3,p4,h1,h2]` layout. For a
//! small enough `lambda` the map is a contraction and the "correlation
//! energy" converges geometrically — each sweep re-runs the inspection
//! metadata's graph exactly as NWChem re-runs the generated kernels every
//! CC iteration.
//!
//! ```text
//! cargo run --release --example cc_iteration
//! ```

use ccsd::{verify, VariantCfg};
use tce::{energy, scale, TileSpace};
use tensor_kernels::sort_4;

fn main() {
    let lambda = 0.05;
    let space = TileSpace::build(&scale::small());
    let (ins, ws) = verify::prepare(&space, 2);
    println!(
        "{} chains / {} GEMMs per sweep; lambda = {lambda}",
        ins.num_chains(),
        ins.total_gemms
    );

    // Frozen initial amplitudes (the "MP2 guess" of the toy model).
    let t2_initial = ws.ga.snapshot(ws.t2);

    let mut prev_e = f64::INFINITY;
    let mut converged = false;
    for sweep in 1..=40 {
        // One contraction sweep through the v5 task graph (real bodies).
        ws.reset_output();
        let graph = ccsd::build_graph(ins.clone(), VariantCfg::v5(), Some(ws.clone()));
        parsec_rt::NativeRuntime::new(2).run(&graph);
        let e = energy::energy(&ws);

        // Jacobi update: t2 = t2_initial + lambda * P(i2).
        for (key, offset, size) in ws.i2_layout.index.iter() {
            let gids = ws.space.decode_key(key); // [h1, h2, p3, p4]
            let dims = [
                ws.space.tile(gids[0]).size,
                ws.space.tile(gids[1]).size,
                ws.space.tile(gids[2]).size,
                ws.space.tile(gids[3]).size,
            ];
            let block = ws.ga.get(ws.i2, offset, size);
            let mut permuted = vec![0.0; size];
            // [h1,h2,p3,p4] -> [p3,p4,h1,h2].
            sort_4(&block, &mut permuted, dims, [2, 3, 0, 1], 1.0);
            let t2_key = ws.space.block_key([gids[2], gids[3], gids[0], gids[1]]);
            let (t2_off, t2_size) = ws
                .t2_layout
                .index
                .lookup(t2_key)
                .expect("matching t2 block");
            assert_eq!(t2_size, size);
            let updated: Vec<f64> = t2_initial[t2_off..t2_off + size]
                .iter()
                .zip(&permuted)
                .map(|(t0, r)| t0 + lambda * r)
                .collect();
            ws.ga.put(ws.t2, t2_off, &updated);
        }

        let delta = (e - prev_e).abs();
        println!("sweep {sweep:>2}: E = {e:+.14}   |dE| = {delta:.2e}");
        if delta < 1e-11 {
            println!("\nconverged after {sweep} sweeps");
            converged = true;
            break;
        }
        prev_e = e;
    }
    assert!(converged, "the fixed point should converge at this scale");
}
