//! Simulate the paper's evaluation platform: a 32-node cluster running
//! the original code and the five PaRSEC variants at a chosen core count,
//! with a rendered trace excerpt.
//!
//! ```text
//! cargo run --release --example cluster_sim            # medium, fast
//! cargo run --release --example cluster_sim -- paper   # full Figure 9 point
//! ```

use ccsd::{build_graph, simulate_baseline, BaselineCfg, VariantCfg};
use parsec_rt::{SchedPolicy, SimEngine};
use std::sync::Arc;
use tce::{inspect, scale, TileSpace};
use xtrace::render::{render, RenderOpts};

fn main() {
    let paper = std::env::args().any(|a| a == "paper");
    let cfg = if paper {
        scale::paper()
    } else {
        scale::medium()
    };
    let (nodes, cores) = (32, 15);

    let space = TileSpace::build(&cfg);
    let ins = Arc::new(inspect(&space, nodes));
    println!(
        "workload: {} chains / {} GEMMs on {nodes} nodes x {cores} cores (+1 comm thread each)",
        ins.num_chains(),
        ins.total_gemms
    );

    let base = simulate_baseline(&ins, &BaselineCfg::new(nodes, cores));
    println!(
        "\noriginal NWChem model: {:>8.3} s  ({} NXTVALs, {} gets)",
        base.seconds(),
        base.nxtvals,
        base.gets
    );

    let mut best = ("original", base.seconds());
    for v in VariantCfg::all() {
        let graph = build_graph(ins.clone(), v, None);
        let policy = if v.priorities {
            SchedPolicy::PriorityFifo
        } else {
            SchedPolicy::Fifo
        };
        let rep = SimEngine::new(nodes, cores).policy(policy).run(&graph);
        println!(
            "PaRSEC {:>2}:              {:>8.3} s  ({} tasks, {} messages, {:.1} GB moved)",
            v.name,
            rep.seconds(),
            rep.tasks,
            rep.messages,
            rep.bytes as f64 / 1e9
        );
        if rep.seconds() < best.1 {
            best = (v.name, rep.seconds());
        }
    }
    println!(
        "\nfastest: {} at {:.3} s ({:.2}x over the original)",
        best.0,
        best.1,
        base.seconds() / best.1
    );

    // A peek at the winner's execution (first two nodes).
    let graph = build_graph(ins.clone(), VariantCfg::v5(), None);
    let rep = SimEngine::new(nodes, cores).collect_trace(true).run(&graph);
    println!("\nv5 trace (2 of {nodes} nodes):");
    print!(
        "{}",
        render(
            &rep.trace,
            &RenderOpts {
                width: 100,
                max_rows: 2 * (cores + 1),
                legend: true
            }
        )
    );
}
