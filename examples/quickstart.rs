//! Quickstart: define a Parameterized Task Graph in the textual DSL and
//! execute it on the native threaded runtime.
//!
//! The graph is the paper's Figure 1 in miniature: `size_L1` parallel
//! chains of `size_L2` serially-dependent GEMM tasks, fed by reader
//! tasks, each chain ending in a SORT. Bodies here are toy 2x2 matrix
//! multiplies so the whole example runs in milliseconds.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use parsec_rt::NativeRuntime;
use ptg::dsl::DslBuilder;
use ptg::PlainCtx;
use std::sync::{Arc, Mutex};

const SRC: &str = r#"
    // Readers pull the operands "from memory" (a host data provider).
    READ_A(L1, L2)
    L1 = 0 .. size_L1 - 1
    L2 = 0 .. size_L2 - 1
    WRITE A <- input_a(L1, L2) -> A GEMM(L1, L2)
    ; size_L1 - L1 + 5 * P
    BODY reader

    READ_B(L1, L2)
    L1 = 0 .. size_L1 - 1
    L2 = 0 .. size_L2 - 1
    WRITE B <- input_b(L1, L2) -> B GEMM(L1, L2)
    ; size_L1 - L1 + 5 * P
    BODY reader

    DFILL(L1)
    L1 = 0 .. size_L1 - 1
    WRITE C -> C GEMM(L1, 0)
    ; size_L1 - L1
    BODY dfill

    GEMM(L1, L2)
    L1 = 0 .. size_L1 - 1
    L2 = 0 .. size_L2 - 1
    READ A <- A READ_A(L1, L2)
    READ B <- B READ_B(L1, L2)
    RW C <- (L2 == 0) ? C DFILL(L1)
         <- (L2 != 0) ? C GEMM(L1, L2 - 1)
         -> (L2 < size_L2 - 1) ? C GEMM(L1, L2 + 1)
         -> (L2 == size_L2 - 1) ? C SORT(L1)
    ; size_L1 - L1 + 1 * P
    BODY gemm

    SORT(L1)
    L1 = 0 .. size_L1 - 1
    READ C <- C GEMM(L1, size_L2 - 1)
    BODY sort
"#;

fn main() {
    let (chains, links) = (4i64, 3i64);

    let results: Arc<Mutex<Vec<(i64, f64)>>> = Default::default();
    let results_sink = results.clone();

    let graph = DslBuilder::new(SRC)
        .global("size_L1", chains)
        .global("size_L2", links)
        // Memory inputs: 2x2 matrices whose entries depend on (L1, L2).
        .data("input_a", |args| {
            Arc::new(vec![1.0, 0.0, 0.0, 1.0 + args[1] as f64])
        })
        .data("input_b", |args| {
            Arc::new(vec![args[0] as f64 + 1.0, 0.5, 0.5, 1.0])
        })
        .body("dfill", |_k, _inputs| vec![Some(Arc::new(vec![0.0; 4]))])
        .body("gemm", |_k, inputs| {
            let a = inputs[0].take().expect("A");
            let b = inputs[1].take().expect("B");
            let mut c = (*inputs[2].take().expect("C")).clone();
            tensor_kernels::dgemm(
                tensor_kernels::Trans::N,
                tensor_kernels::Trans::N,
                2,
                2,
                2,
                1.0,
                &a,
                &b,
                1.0,
                &mut c,
            );
            vec![None, None, Some(Arc::new(c))]
        })
        .body("sort", move |k, inputs| {
            let c = inputs[0].take().expect("C");
            results_sink
                .lock()
                .unwrap()
                .push((k.params[0], c.iter().sum()));
            vec![None]
        })
        .compile(Arc::new(PlainCtx { nodes: 1 }))
        .expect("DSL compiles");

    let report = NativeRuntime::new(2).run(&graph);

    let mut sums = results.lock().unwrap().clone();
    sums.sort_by_key(|&(l1, _)| l1);
    println!(
        "executed {} tasks on 2 worker threads in {:?}",
        report.tasks, report.wall
    );
    for (l1, sum) in &sums {
        println!("chain {l1}: sum of accumulated C = {sum:.3}");
    }
    assert_eq!(sums.len(), chains as usize);

    // The whole point of the PTG: no DAG was ever materialized — the
    // runtime discovered 4 chains x (2 readers + 1 gemm) x 3 + dfill +
    // sort symbolically, task by task.
    let expected = chains * (3 * links) + 2 * chains;
    assert_eq!(report.tasks, expected as u64);
    println!("ok: {} tasks discovered symbolically", report.tasks);
}
