//! The priority experiment (Figures 10 vs 11), self-contained: run v4
//! (priorities decreasing with chain number) and v2 (no priorities) on
//! the simulated cluster and compare when real work starts.
//!
//! Without priorities, every reader task is ready at t=0 and executes
//! before any GEMM — "the network is flooded with communication requests
//! between all nodes ... and there is no computation with which to
//! overlap this communication".
//!
//! ```text
//! cargo run --release --example priority_study
//! ```

use ccsd::{build_graph, VariantCfg};
use parsec_rt::{SchedPolicy, SimEngine};
use std::sync::Arc;
use tce::{inspect, scale, TileSpace};
use xtrace::analyze;
use xtrace::render::{render_range, RenderOpts};

fn main() {
    let (nodes, cores) = (8, 7);
    let space = TileSpace::build(&scale::paper());
    let ins = Arc::new(inspect(&space, nodes));

    let mut first = Vec::new();
    for (cfg, policy) in [
        (VariantCfg::v4(), SchedPolicy::PriorityFifo),
        (VariantCfg::v2(), SchedPolicy::Fifo),
    ] {
        let graph = build_graph(ins.clone(), cfg, None);
        let rep = SimEngine::new(nodes, cores)
            .policy(policy)
            .collect_trace(true)
            .run(&graph);
        let start = analyze::mean_first_start(&rep.trace, "GEMM").unwrap();
        let idle = analyze::startup_idle_before(&rep.trace, "GEMM").unwrap();
        println!(
            "{}: makespan {:.3} s | mean first GEMM at {:.4} s | startup idle {:.4} s",
            cfg.name,
            rep.seconds(),
            start as f64 / 1e9,
            idle as f64 / 1e9
        );
        // Render the first 2% of the execution on one node.
        let (b, e) = rep.trace.extent().unwrap();
        let win = b + (e - b) / 50;
        println!(
            "{}",
            render_range(
                &rep.trace,
                b,
                win,
                &RenderOpts {
                    width: 100,
                    max_rows: cores + 1,
                    legend: true
                }
            )
        );
        first.push(start);
    }
    let ratio = first[1] as f64 / first[0].max(1) as f64;
    println!("first-GEMM delay without priorities: {ratio:.1}x longer");
    assert!(ratio > 1.5, "the priority pipeline must show");
}
