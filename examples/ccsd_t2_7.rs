//! The full application pipeline on a small problem, end to end:
//!
//! 1. build a tiled spin-orbital space and materialize the `t2`/`v`
//!    tensors in (logical) Global Arrays;
//! 2. run the original serial `icsd_t2_7` — the reference numerics;
//! 3. run the **inspection phase** (control-flow slice + GA placement
//!    queries) to produce the chain metadata;
//! 4. execute the paper's five PaRSEC variants on the native threaded
//!    runtime and verify all of them reproduce the reference correlation
//!    energy "to the 14th digit";
//! 5. re-run v5 inside the simulated cluster with real bodies, getting
//!    both the numerics and a virtual-time estimate in one pass.
//!
//! ```text
//! cargo run --release --example ccsd_t2_7
//! ```

use ccsd::{verify, VariantCfg};
use tce::{scale, TileSpace};
use tensor_kernels::rel_diff;

fn main() {
    let space = TileSpace::build(&scale::small());
    let nodes = 4;
    println!(
        "space: {} occupied + {} virtual spin orbitals, {} logical nodes",
        space.n_occ(),
        space.n_virt(),
        nodes
    );

    let (ins, ws) = verify::prepare(&space, nodes);
    println!(
        "inspection: {} chains, {} GEMMs, longest chain {}",
        ins.num_chains(),
        ins.total_gemms,
        ins.max_chain_len
    );

    let e_ref = verify::reference_energy(&ws);
    println!("reference energy functional: {e_ref:.15}");

    println!("\nvariant  engine     energy                relative diff");
    for cfg in VariantCfg::all() {
        let e = verify::variant_energy_native(&ins, &ws, cfg, 4);
        let d = rel_diff(e_ref, e);
        println!("{:>7}  native     {e:.15}  {d:.2e}", cfg.name);
        assert!(d < 1e-12, "{} disagrees with the reference", cfg.name);
    }

    let e = verify::variant_energy_sim(&ins, &ws, VariantCfg::v5(), 2);
    let d = rel_diff(e_ref, e);
    println!("{:>7}  simulated  {e:.15}  {d:.2e}", "v5");
    assert!(d < 1e-12);

    println!("\nall variants matched the reference (the paper: \"up to the 14th digit\")");
}
