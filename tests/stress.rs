//! Concurrency stress: hammer the work-stealing dispatch path with more
//! workers than cores, repeatedly, and demand bit-identical bookkeeping
//! and 1e-12 numerics every time. Races in the sharded tracker, the
//! payload store, or the idle gate show up here as lost tasks, duplicated
//! tasks, wrong energies, or hangs.

use ccsd::{build_graph, verify, VariantCfg};
use parsec_rt::{NativeRuntime, SchedPolicy};
use ptg::{Dep, GraphCtx, Payload, PlainCtx, TaskClass, TaskGraph, TaskKey};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use tce::{scale, TileSpace};
use tensor_kernels::rel_diff;

const ITERS: usize = 50;
const THREADS: usize = 8;

/// Wide fan-in: `n` root leaves all feed one sink task through the same
/// flow, so the sink's readiness is decided by `n` concurrent `deliver`s
/// racing on one tracker shard entry.
struct FanIn {
    n: i64,
    total: Arc<AtomicU64>,
}

impl TaskClass for FanIn {
    fn name(&self) -> &str {
        "FANIN"
    }
    fn num_flows(&self) -> usize {
        1
    }
    fn roots(&self, _ctx: &dyn GraphCtx, out: &mut Vec<TaskKey>) {
        for i in 0..self.n {
            out.push(TaskKey::new(0, &[0, i]));
        }
    }
    fn num_inputs(&self, key: TaskKey, _ctx: &dyn GraphCtx) -> usize {
        if key.params[0] == 0 {
            0
        } else {
            self.n as usize
        }
    }
    fn successors(&self, key: TaskKey, _ctx: &dyn GraphCtx, out: &mut Vec<Dep>) {
        if key.params[0] == 0 {
            out.push(Dep {
                src_flow: 0,
                dst: TaskKey::new(0, &[1, 0]),
                dst_flow: 0,
            });
        }
    }
    fn execute(
        &self,
        key: TaskKey,
        _ctx: &dyn GraphCtx,
        _inputs: &mut [Option<Payload>],
    ) -> Vec<Option<Payload>> {
        if key.params[0] == 0 {
            self.total
                .fetch_add((key.params[1] + 1) as u64, Ordering::Relaxed);
            vec![Some(Arc::new(vec![key.params[1] as f64]))]
        } else {
            vec![None]
        }
    }
}

/// 50 runs of a 256-leaf fan-in at 8 workers: every run must execute
/// exactly n+1 tasks and sum the leaves exactly.
#[test]
fn fan_in_reduce_is_stable_under_oversubscription() {
    let n = 256i64;
    let expected: u64 = (1..=n as u64).sum();
    for iter in 0..ITERS {
        let total = Arc::new(AtomicU64::new(0));
        let g = TaskGraph::new(
            vec![Arc::new(FanIn {
                n,
                total: total.clone(),
            })],
            Arc::new(PlainCtx { nodes: 1 }),
        );
        let rep = NativeRuntime::new(THREADS).run(&g);
        assert_eq!(
            rep.tasks,
            n as u64 + 1,
            "iteration {iter}: task count drifted"
        );
        assert_eq!(
            total.load(Ordering::Relaxed),
            expected,
            "iteration {iter}: a leaf ran zero or two times"
        );
    }
}

/// 50 runs of the full v5 CCSD variant graph at 8 workers: the task count
/// must be identical every iteration and the energy must match the serial
/// reference to 1e-12 every iteration, under every scheduling policy the
/// engine offers (alternating per iteration).
#[test]
fn v5_variant_is_stable_under_oversubscription() {
    let space = TileSpace::build(&scale::tiny());
    let (ins, ws) = verify::prepare(&space, 2);
    let e_ref = verify::reference_energy(&ws);
    let policies = [
        SchedPolicy::PriorityFifo,
        SchedPolicy::PriorityLifo,
        SchedPolicy::Fifo,
        SchedPolicy::Lifo,
        SchedPolicy::ChainAffinity,
    ];

    let mut tasks0 = None;
    for iter in 0..ITERS {
        ws.reset_output();
        let g = build_graph(ins.clone(), VariantCfg::v5(), Some(ws.clone()));
        let policy = policies[iter % policies.len()];
        let rep = NativeRuntime::new(THREADS).policy(policy).run(&g);
        let tasks = *tasks0.get_or_insert(rep.tasks);
        assert_eq!(
            rep.tasks, tasks,
            "iteration {iter} ({policy:?}): task count drifted"
        );
        let e = tce::energy::energy(&ws);
        assert!(
            rel_diff(e_ref, e) < 1e-12,
            "iteration {iter} ({policy:?}): energy {e} vs reference {e_ref}"
        );
    }
}
