//! End-to-end property tests: randomized problem spaces through the whole
//! stack (inspection -> variant graphs -> engines -> numerics).

use ccsd::{build_graph, verify, VariantCfg};
use proptest::prelude::*;
use ptg::validate::audit;
use std::sync::Arc;
use tce::{inspect, SpaceConfig, TileSpace};
use tensor_kernels::rel_diff;

fn arb_space() -> impl Strategy<Value = SpaceConfig> {
    (1usize..=2, 1usize..=3, 2usize..=4, 1u8..=2, 0u64..1_000).prop_map(
        |(occ, virt, size, irrep_bits, seed)| SpaceConfig {
            occ_tiles_per_spin: occ,
            virt_tiles_per_spin: virt,
            tile_size: size,
            size_spread: 1,
            irreps: 1 << (irrep_bits - 1),
            seed,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Any randomized space: every variant graph audits clean and
    /// reproduces the reference numerics on the native engine.
    #[test]
    fn random_spaces_verify(cfg in arb_space(), nodes in 1usize..4) {
        let space = TileSpace::build(&cfg);
        let ins = Arc::new(inspect(&space, nodes));
        if ins.num_chains() == 0 {
            // Fully guarded-out space: nothing to execute.
            return Ok(());
        }
        for v in VariantCfg::all() {
            let g = build_graph(ins.clone(), v, None);
            let a = audit(&g, 2_000_000).map_err(|e| {
                TestCaseError::fail(format!("{} audit: {e}", v.name))
            })?;
            prop_assert_eq!(a.tasks_per_class["GEMM"], ins.total_gemms);
        }
        let (ins, ws) = verify::prepare(&space, nodes);
        let e_ref = verify::reference_energy(&ws);
        let e_v5 = verify::variant_energy_native(&ins, &ws, VariantCfg::v5(), 2);
        let e_v1 = verify::variant_energy_native(&ins, &ws, VariantCfg::v1(), 2);
        prop_assert!(rel_diff(e_ref, e_v5) < 1e-12, "v5: {} vs {}", e_v5, e_ref);
        prop_assert!(rel_diff(e_ref, e_v1) < 1e-12, "v1: {} vs {}", e_v1, e_ref);
    }

    /// Segment heights are semantics-preserving for arbitrary heights.
    #[test]
    fn random_heights_preserve_semantics(h in 1usize..12, seed in 0u64..100) {
        let cfg = SpaceConfig {
            occ_tiles_per_spin: 1,
            virt_tiles_per_spin: 2,
            tile_size: 3,
            size_spread: 1,
            irreps: 1,
            seed,
        };
        let space = TileSpace::build(&cfg);
        let (ins, ws) = verify::prepare(&space, 2);
        if ins.num_chains() == 0 {
            return Ok(());
        }
        let e_ref = verify::reference_energy(&ws);
        let e = verify::variant_energy_native(&ins, &ws, VariantCfg::height(h), 2);
        prop_assert!(rel_diff(e_ref, e) < 1e-12, "h={}: {} vs {}", h, e, e_ref);
    }

    /// The simulated engine completes every graph (no deadlocks) with the
    /// exact task count, for arbitrary core/node geometry.
    #[test]
    fn sim_never_deadlocks(
        cfg in arb_space(),
        nodes in 1usize..5,
        cores in 1usize..5,
    ) {
        let space = TileSpace::build(&cfg);
        let ins = Arc::new(inspect(&space, nodes));
        if ins.num_chains() == 0 {
            return Ok(());
        }
        let g = build_graph(ins.clone(), VariantCfg::v3(), None);
        let expected = audit(&g, 2_000_000).unwrap().total_tasks as u64;
        let rep = parsec_rt::SimEngine::new(nodes, cores).run(&g);
        prop_assert_eq!(rep.tasks, expected);
    }
}
