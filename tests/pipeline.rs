//! Cross-crate integration tests: the full pipeline from DSL/inspection
//! through both engines, plus shape assertions on the simulated curves.

use ccsd::{build_graph, simulate_baseline, verify, BaselineCfg, VariantCfg};
use parsec_rt::{NativeRuntime, SchedPolicy, SimEngine};
use ptg::dsl::DslBuilder;
use ptg::PlainCtx;
use std::sync::{Arc, Mutex};
use tce::{inspect, scale, TileSpace};
use tensor_kernels::rel_diff;

/// The headline correctness claim, asserted across every execution model:
/// serial reference, native threaded runtime, and the simulated cluster
/// with real bodies all agree to ~14 digits.
#[test]
fn all_execution_models_agree() {
    let space = TileSpace::build(&scale::tiny());
    let (ins, ws) = verify::prepare(&space, 3);
    let e_ref = verify::reference_energy(&ws);
    for cfg in VariantCfg::all() {
        let e_native = verify::variant_energy_native(&ins, &ws, cfg, 2);
        let e_sim = verify::variant_energy_sim(&ins, &ws, cfg, 3);
        assert!(rel_diff(e_ref, e_native) < 1e-12, "{} native", cfg.name);
        assert!(rel_diff(e_ref, e_sim) < 1e-12, "{} sim", cfg.name);
    }
}

/// The simulated cluster is deterministic: identical runs give identical
/// makespans, events, and traces.
#[test]
fn simulation_is_deterministic() {
    let space = TileSpace::build(&scale::small());
    let ins = Arc::new(inspect(&space, 4));
    let run = || {
        let g = build_graph(ins.clone(), VariantCfg::v4(), None);
        SimEngine::new(4, 3).collect_trace(true).run(&g)
    };
    let a = run();
    let b = run();
    assert_eq!(a.makespan, b.makespan);
    assert_eq!(a.events, b.events);
    assert_eq!(a.messages, b.messages);
    assert_eq!(a.trace.spans().len(), b.trace.spans().len());

    let base = simulate_baseline(&ins, &BaselineCfg::new(4, 3));
    let base2 = simulate_baseline(&ins, &BaselineCfg::new(4, 3));
    assert_eq!(base.makespan, base2.makespan);
}

/// Figure 9's qualitative shape at a fast scale: the original gains from
/// more cores early but the PaRSEC variants dominate it well before
/// saturation, and every variant's makespan improves with cores.
#[test]
fn figure9_shape_smoke() {
    let space = TileSpace::build(&scale::medium());
    let nodes = 8;
    let ins = Arc::new(inspect(&space, nodes));

    let orig = |cores| simulate_baseline(&ins, &BaselineCfg::new(nodes, cores)).makespan;
    let variant = |cfg, cores| {
        let g = build_graph(ins.clone(), cfg, None);
        SimEngine::new(nodes, cores).run(&g).makespan
    };

    let o1 = orig(1);
    let o3 = orig(3);
    let o7 = orig(7);
    assert!(
        o3 < o1,
        "original must gain from 1 -> 3 cores ({o1} -> {o3})"
    );
    assert!(o7 <= o3, "original must not regress 3 -> 7 at this scale");

    for cfg in VariantCfg::all() {
        let v1c = variant(cfg, 1);
        let v7c = variant(cfg, 7);
        assert!(v7c < v1c, "{} must scale with cores", cfg.name);
        assert!(v7c < o7, "{} at 7 cores must beat the original", cfg.name);
    }
}

/// Traces produced by both engines satisfy the Gantt invariant and the
/// baseline shows blocking (per-rank serial) communication.
#[test]
fn traces_are_well_formed() {
    let space = TileSpace::build(&scale::small());
    let ins = Arc::new(inspect(&space, 2));

    let g = build_graph(ins.clone(), VariantCfg::v5(), None);
    let rep = SimEngine::new(2, 3).collect_trace(true).run(&g);
    assert!(
        rep.trace.find_overlap().is_none(),
        "simulated trace rows must not overlap"
    );

    let base = simulate_baseline(&ins, &BaselineCfg::new(2, 2).collect_trace(true));
    assert!(
        base.trace.find_overlap().is_none(),
        "baseline trace rows must not overlap"
    );
    let share = xtrace::analyze::comm_share_of_busy(&base.trace);
    assert!(
        share > 0.02,
        "baseline must spend visible time in blocking comm ({share})"
    );
}

/// A DSL-defined graph and a handwritten TaskClass graph with the same
/// structure compute the same result through the native engine.
#[test]
fn dsl_and_rust_graphs_agree() {
    // Sum i=0..N-1 of (i+1) via a chain of ACC tasks, expressed in DSL.
    let n = 12i64;
    let total = Arc::new(Mutex::new(0.0f64));
    let sink = total.clone();
    let graph = DslBuilder::new(
        r#"
        ACC(I)
        I = 0 .. n - 1
        RW X <- (I != 0) ? X ACC(I - 1)
             -> (I < n - 1) ? X ACC(I + 1)
             -> (I == n - 1) ? X DONE(0)
        BODY acc

        DONE(Z)
        Z = 0 .. 0
        READ X <- X ACC(n - 1)
        BODY done
        "#,
    )
    .global("n", n)
    .body("acc", |k, inputs| {
        let prev = inputs[0].take().map(|p| p[0]).unwrap_or(0.0);
        vec![Some(Arc::new(vec![prev + (k.params[0] + 1) as f64]))]
    })
    .body("done", move |_k, inputs| {
        *sink.lock().unwrap() = inputs[0].take().unwrap()[0];
        vec![None]
    })
    .compile(Arc::new(PlainCtx { nodes: 1 }))
    .unwrap();

    let rep = NativeRuntime::new(3)
        .policy(SchedPolicy::PriorityFifo)
        .run(&graph);
    assert_eq!(rep.tasks, n as u64 + 1);
    let expected: f64 = (1..=n).sum::<i64>() as f64;
    assert_eq!(*total.lock().unwrap(), expected);
}

/// A DSL graph with cost hooks runs on the simulated cluster: the fixed
/// durations show up in the virtual makespan.
#[test]
fn dsl_graph_runs_on_simulator() {
    let graph = DslBuilder::new(
        r#"
        STEP(I)
        I = 0 .. 9
        RW X <- (I != 0) ? X STEP(I - 1)
             -> (I < 9) ? X STEP(I + 1)
        BODY step
        "#,
    )
    .cost("STEP", |_k| ptg::TaskCost::Fixed { ns: 1_000_000 })
    .compile(Arc::new(PlainCtx { nodes: 1 }))
    .unwrap();
    let rep = SimEngine::new(1, 2).run(&graph);
    assert_eq!(rep.tasks, 10);
    // Ten serial 1 ms steps plus dispatch overhead.
    assert!(rep.makespan >= 10_000_000, "makespan {}", rep.makespan);
    assert!(rep.makespan < 12_000_000, "makespan {}", rep.makespan);
}

/// The cache-affinity scheduling policy completes the workload with the
/// same numerics (policy only affects order, never results).
#[test]
fn chain_affinity_policy_is_sound() {
    let space = TileSpace::build(&scale::tiny());
    let (ins, ws) = verify::prepare(&space, 2);
    let e_ref = verify::reference_energy(&ws);

    ws.reset_output();
    let graph = build_graph(ins.clone(), VariantCfg::v5(), Some(ws.clone()));
    NativeRuntime::new(3)
        .policy(SchedPolicy::ChainAffinity)
        .run(&graph);
    let e = tce::energy::energy(&ws);
    assert!(rel_diff(e_ref, e) < 1e-12, "{e} vs {e_ref}");

    // And on the simulated engine.
    ws.reset_output();
    let graph = build_graph(ins.clone(), VariantCfg::v5(), Some(ws.clone()));
    let rep = SimEngine::new(2, 3)
        .policy(SchedPolicy::ChainAffinity)
        .execute_bodies(true)
        .run(&graph);
    assert!(rep.tasks > 0);
    let e = tce::energy::energy(&ws);
    assert!(rel_diff(e_ref, e) < 1e-12, "sim: {e} vs {e_ref}");
}

/// Node-count invariance: distributing the Global Arrays across different
/// logical cluster sizes never changes the numerics.
#[test]
fn node_count_invariance() {
    let space = TileSpace::build(&scale::tiny());
    let mut energies = Vec::new();
    for nodes in [1, 2, 5] {
        let (ins, ws) = verify::prepare(&space, nodes);
        energies.push(verify::variant_energy_native(
            &ins,
            &ws,
            VariantCfg::v3(),
            2,
        ));
    }
    assert!(rel_diff(energies[0], energies[1]) < 1e-12);
    assert!(rel_diff(energies[0], energies[2]) < 1e-12);
}

/// More simulated cores never slow a variant down (non-trivial: dispatch
/// order changes completely), and adding nodes reduces makespan for a
/// parallel workload.
#[test]
fn scaling_monotonicity_smoke() {
    let space = TileSpace::build(&scale::small());
    let ins4 = Arc::new(inspect(&space, 4));
    let g = |ins: &Arc<tce::Inspection>, cfg| build_graph(ins.clone(), cfg, None);
    let t_1 = SimEngine::new(4, 1)
        .run(&g(&ins4, VariantCfg::v5()))
        .makespan;
    let t_4 = SimEngine::new(4, 4)
        .run(&g(&ins4, VariantCfg::v5()))
        .makespan;
    assert!(t_4 < t_1);

    let ins2 = Arc::new(inspect(&space, 2));
    let t_2n = SimEngine::new(2, 4)
        .run(&g(&ins2, VariantCfg::v5()))
        .makespan;
    assert!(t_4 < t_2n, "4 nodes ({t_4}) should beat 2 nodes ({t_2n})");
}
